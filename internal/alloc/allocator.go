package alloc

import (
	"fmt"
	"sort"

	"activermt/internal/policy"
)

// Scheme selects how the allocator ranks feasible mutants (Section 4.2 and
// Figure 11).
type Scheme int

// Allocation schemes.
const (
	// WorstFit prefers stages with the most fungible memory (free plus
	// elastic-held); the paper's default, maximizing utilization.
	WorstFit Scheme = iota
	// BestFit prefers stages with the least fungible memory, maximizing
	// per-stage occupancy.
	BestFit
	// FirstFit takes the first feasible mutant in enumeration order.
	FirstFit
	// MinRealloc minimizes the number of existing elastic applications
	// disturbed by the admission.
	MinRealloc
)

// String names the scheme as in Figure 11's legend.
func (s Scheme) String() string {
	switch s {
	case WorstFit:
		return "wf"
	case BestFit:
		return "bf"
	case FirstFit:
		return "ff"
	case MinRealloc:
		return "realloc"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Config parametrizes an Allocator.
type Config struct {
	NumStages  int
	NumIngress int
	StageWords int // register words per stage
	BlockWords int // words per allocation block (granularity)
	MaxPasses  int // pass budget under the least-constrained policy
	// MaxRegionsPerStage caps the protected regions per stage, modeling
	// the TCAM bottleneck; 0 disables the cap.
	MaxRegionsPerStage int
	Policy             Policy
	Scheme             Scheme
}

// DefaultConfig mirrors the paper's testbed: 20 stages, 94,208 words per
// stage, 1 KB blocks (256 words, hence 368 blocks per stage), worst-fit,
// most-constrained.
func DefaultConfig() Config {
	return Config{
		NumStages:          20,
		NumIngress:         10,
		StageWords:         94208,
		BlockWords:         256,
		MaxPasses:          2,
		MaxRegionsPerStage: 192,
		Policy:             MostConstrained,
		Scheme:             WorstFit,
	}
}

// BlocksPerStage returns the block pool size of each stage.
func (c Config) BlocksPerStage() int { return c.StageWords / c.BlockWords }

// appGroup is a set of accesses that must receive identical block ranges
// (alignment group), placed across a set of distinct physical stages.
type appGroup struct {
	id      int
	demand  int   // blocks; 0 = elastic
	stages  []int // physical stages, access order
	logical []int // logical stages, access order
}

// App is one admitted application instance.
type App struct {
	FID       uint16
	Cons      *Constraints
	Mut       Mutant
	MutantIdx int
	Elastic   bool

	groups  []appGroup
	regions map[int]BlockRange // physical stage -> granted blocks
}

// Regions returns the app's current per-stage block grants (copy).
func (a *App) Regions() map[int]BlockRange {
	out := make(map[int]BlockRange, len(a.regions))
	for s, r := range a.regions {
		out[s] = r
	}
	return out
}

// TotalBlocks returns the blocks held across all stages.
func (a *App) TotalBlocks() int {
	t := 0
	for _, r := range a.regions {
		t += r.Size()
	}
	return t
}

// WordRange is a half-open range of register word indices.
type WordRange struct {
	Lo, Hi uint32
}

// AccessPlacement locates one access: its logical stage and word region.
type AccessPlacement struct {
	Logical int
	Range   WordRange
}

// Placement is the materialized allocation of one application: what an
// allocation-response packet carries.
type Placement struct {
	FID       uint16
	MutantIdx int
	Mutant    Mutant
	Accesses  []AccessPlacement
}

// Result reports one allocation attempt.
type Result struct {
	Failed bool
	Reason string

	New         *Placement   // nil on failure
	Reallocated []*Placement // existing apps whose regions changed

	MutantsTotal    int
	MutantsFeasible int
}

// Allocator is the switch controller's memory-allocation state: the block
// pools of every stage, the admitted applications, and the pinned positions
// of inelastic allocations.
type Allocator struct {
	cfg    Config
	blocks int

	apps    map[uint16]*App
	pinned  []*intervalSet // per stage: inelastic intervals (persistent)
	elastic []*intervalSet // per stage: elastic intervals (recomputed)

	// tuning re-homes the search/waterfill constants behind the policy
	// layer: MaxCommitAttempts bounds how many ranked candidates Allocate
	// tries before declaring placement failure (commits rarely fail — the
	// skyline fallback makes elastic placement robust — so it is a
	// backstop), and SlackDivisor sizes the per-stage waterfill hold-back.
	tuning policy.AllocTuning

	// tel mirrors the books into occupancy gauges; it outlives the
	// allocator (see Telemetry) and resyncs after every public mutation.
	tel *Telemetry
}

// New returns an empty allocator.
func New(cfg Config) (*Allocator, error) {
	if cfg.NumStages <= 0 || cfg.StageWords <= 0 || cfg.BlockWords <= 0 {
		return nil, fmt.Errorf("alloc: bad config %+v", cfg)
	}
	if cfg.BlockWords > cfg.StageWords {
		return nil, fmt.Errorf("alloc: block (%d words) exceeds stage (%d words)", cfg.BlockWords, cfg.StageWords)
	}
	a := &Allocator{
		cfg:     cfg,
		blocks:  cfg.BlocksPerStage(),
		apps:    make(map[uint16]*App),
		pinned:  make([]*intervalSet, cfg.NumStages),
		elastic: make([]*intervalSet, cfg.NumStages),
		tuning:  policy.DefaultDecisions().Alloc,
	}
	for i := range a.pinned {
		a.pinned[i] = &intervalSet{}
		a.elastic[i] = &intervalSet{}
	}
	return a, nil
}

// Config returns the allocator configuration.
func (a *Allocator) Config() Config { return a.cfg }

// Tuning returns the current policy tuning.
func (a *Allocator) Tuning() policy.AllocTuning { return a.tuning }

// SetTuning applies policy tuning; zero or negative fields keep the
// defaults (a half-set decision must not wedge the search).
func (a *Allocator) SetTuning(t policy.AllocTuning) {
	if t.MaxCommitAttempts > 0 {
		a.tuning.MaxCommitAttempts = t.MaxCommitAttempts
	}
	if t.SlackDivisor > 0 {
		a.tuning.SlackDivisor = t.SlackDivisor
	}
}

// NumApps returns the number of resident applications.
func (a *Allocator) NumApps() int { return len(a.apps) }

// App returns the admitted app for fid.
func (a *Allocator) App(fid uint16) (*App, bool) {
	app, ok := a.apps[fid]
	return app, ok
}

// FIDs returns all resident FIDs in ascending order.
func (a *Allocator) FIDs() []uint16 {
	out := make([]uint16, 0, len(a.apps))
	for fid := range a.apps {
		out = append(out, fid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildGroups derives the app's alignment groups for a mutant placement.
func buildGroups(cons *Constraints, mut Mutant, numStages int) []appGroup {
	byID := map[int]*appGroup{}
	var order []int
	for i, acc := range cons.Accesses {
		id := acc.AlignGroup
		if id == 0 {
			id = -(i + 1) // ungrouped accesses get private groups
		}
		g, ok := byID[id]
		if !ok {
			g = &appGroup{id: id}
			byID[id] = g
			order = append(order, id)
		}
		if acc.Demand > g.demand {
			g.demand = acc.Demand
		}
		g.stages = append(g.stages, mut[i]%numStages)
		g.logical = append(g.logical, mut[i])
	}
	out := make([]appGroup, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// stageStats is a per-stage census used for feasibility and cost.
type stageStats struct {
	pinnedUsed    int
	elasticGroups int
	regionApps    int
	elasticFIDs   map[uint16]bool
}

func (a *Allocator) census() []stageStats {
	st := make([]stageStats, a.cfg.NumStages)
	for s := range st {
		st[s].pinnedUsed = a.pinned[s].used()
		st[s].elasticFIDs = map[uint16]bool{}
	}
	for _, app := range a.apps {
		for s := range app.regions {
			st[s].regionApps++
		}
		if !app.Elastic {
			continue
		}
		for _, g := range app.groups {
			for _, s := range g.stages {
				st[s].elasticGroups++
				st[s].elasticFIDs[app.FID] = true
			}
		}
	}
	return st
}

// feasible checks capacity feasibility of placing cons (as groups) given the
// census; placement-level checks (fragmentation) happen at commit.
func (a *Allocator) feasible(groups []appGroup, elastic bool, st []stageStats) bool {
	for _, g := range groups {
		for _, s := range g.stages {
			if a.cfg.MaxRegionsPerStage > 0 && st[s].regionApps >= a.cfg.MaxRegionsPerStage {
				return false
			}
			need := g.demand
			if elastic {
				need = 1 // a new elastic group needs at least one block
			}
			// Existing elastic groups can shrink to one block each.
			if st[s].pinnedUsed+st[s].elasticGroups+need > a.blocks {
				return false
			}
		}
	}
	return true
}

// cost ranks a mutant for the configured scheme; lower is better, compared
// lexicographically. For elastic candidates, reusing a stage-set signature
// that existing elastic groups already use is preferred (fourth component):
// identical sets stack at common offsets without fragmenting one another,
// which keeps aligned placement feasible at high occupancy.
func (a *Allocator) cost(groups []appGroup, st []stageStats, sigs map[string]bool) [5]int {
	var c [5]int
	sigBonus := 0
	overlap := 0
	for _, g := range groups {
		if sigs[groupSig(g.stages)] {
			sigBonus--
		}
		for _, s := range g.stages {
			// Only elastic occupancy marks a stage as contended: pinned
			// inelastic blocks shrink the pool but leave the remainder
			// fully fungible (Section 4.2's definition).
			if st[s].elasticGroups > 0 {
				overlap++
			}
		}
	}
	switch a.cfg.Scheme {
	case FirstFit:
		return c // enumeration order decides
	case MinRealloc:
		disturbed := map[uint16]bool{}
		for _, g := range groups {
			for _, s := range g.stages {
				for fid := range st[s].elasticFIDs {
					disturbed[fid] = true
				}
			}
		}
		c[0] = len(disturbed)
		// Tie-break like worst fit.
		c[1] = sigBonus
		for _, g := range groups {
			for _, s := range g.stages {
				c[2] += st[s].pinnedUsed
				c[3] += st[s].elasticGroups
			}
		}
	case WorstFit:
		// Worst fit prefers the most fungible memory: first stages free of
		// elastic tenants (spread — Figure 9b's disjoint placements), then
		// — once everything is occupied — established stage-set signatures
		// (identical sets stack without fragmenting aligned placement),
		// then the most fungible (least pinned) stages, then the least
		// elastic contention.
		c[0] = overlap
		c[2] = sigBonus
		for _, g := range groups {
			for _, s := range g.stages {
				c[1] += st[s].pinnedUsed
				c[3] += st[s].elasticGroups
				c[4] += st[s].regionApps
			}
		}
	case BestFit:
		// Best fit packs: most-occupied stages first.
		c[0] = -overlap
		c[2] = sigBonus
		for _, g := range groups {
			for _, s := range g.stages {
				c[1] -= st[s].pinnedUsed
				c[3] -= st[s].elasticGroups
				c[4] -= st[s].regionApps
			}
		}
	}
	return c
}

// groupSig is a stage-set signature used for placement-affinity ranking.
func groupSig(stages []int) string {
	b := make([]byte, len(stages))
	for i, s := range stages {
		b[i] = byte(s)
	}
	return string(b)
}

// elasticSignatures collects the stage-set signatures of resident elastic
// groups.
func (a *Allocator) elasticSignatures() map[string]bool {
	out := map[string]bool{}
	for _, app := range a.apps {
		if !app.Elastic {
			continue
		}
		for _, g := range app.groups {
			out[groupSig(g.stages)] = true
		}
	}
	return out
}

func lessCost(x, y [5]int) bool {
	for i := 0; i < 4; i++ {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return x[4] < y[4]
}

// Allocate admits fid with the given constraints, choosing the best feasible
// mutant under the configured policy and scheme. A nil error with
// Result.Failed set means the request was well-formed but could not be
// placed (the paper's "failed allocation" — a fast path).
func (a *Allocator) Allocate(fid uint16, cons *Constraints) (*Result, error) {
	defer a.syncTel()
	if _, dup := a.apps[fid]; dup {
		return nil, fmt.Errorf("alloc: fid %d already resident", fid)
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	if len(cons.Accesses) == 0 {
		return nil, fmt.Errorf("alloc: stateless request reached the allocator (admit it directly)")
	}
	if !cons.Elastic {
		for i, acc := range cons.Accesses {
			if acc.Demand < 1 {
				return nil, fmt.Errorf("alloc: inelastic access %d has no demand", i)
			}
		}
	}
	bounds, err := ComputeBounds(cons, a.cfg.Policy, a.cfg.NumStages, a.cfg.NumIngress, a.cfg.MaxPasses)
	if err != nil {
		return &Result{Failed: true, Reason: "infeasible-constraints"}, nil
	}
	mutants := EnumerateMutants(bounds, a.cfg.NumStages)
	st := a.census()

	sigs := a.elasticSignatures()
	type cand struct {
		idx  int
		cost [5]int
	}
	var cands []cand
	for idx, x := range mutants {
		groups := buildGroups(cons, x, a.cfg.NumStages)
		if !a.feasible(groups, cons.Elastic, st) {
			continue
		}
		cands = append(cands, cand{idx: idx, cost: a.cost(groups, st, sigs)})
	}
	res := &Result{MutantsTotal: len(mutants), MutantsFeasible: len(cands)}
	if len(cands) == 0 {
		res.Failed = true
		res.Reason = "no-feasible-mutant"
		return res, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return lessCost(cands[i].cost, cands[j].cost)
		}
		return cands[i].idx < cands[j].idx
	})

	before := a.snapshotElasticRegions()
	// Bound the commit walk, but keep it diverse: consecutive candidates
	// under a tied cost share nearly identical stage sets and fail the
	// same way, so after the best few, sample the remainder evenly.
	try := cands
	if maxTry := a.tuning.MaxCommitAttempts; len(cands) > maxTry {
		try = try[:0:0]
		head := maxTry / 4
		try = append(try, cands[:head]...)
		stride := (len(cands) - head) / (maxTry - head)
		for i := head; i < len(cands); i += stride {
			try = append(try, cands[i])
		}
	}
	for _, c := range try {
		app := &App{
			FID:       fid,
			Cons:      cons,
			Mut:       mutants[c.idx],
			MutantIdx: c.idx,
			Elastic:   cons.Elastic,
			regions:   map[int]BlockRange{},
		}
		app.groups = buildGroups(cons, app.Mut, a.cfg.NumStages)
		if a.tryCommit(app) {
			res.New = a.placementFor(app)
			res.Reallocated = a.changedPlacements(before, fid)
			return res, nil
		}
	}
	res.Failed = true
	res.Reason = "placement-failed"
	return res, nil
}

// tryCommit attempts to install the app; on any failure the allocator state
// is restored exactly.
func (a *Allocator) tryCommit(app *App) bool {
	var added []int // stages where pinned intervals were inserted
	rollback := func() {
		for _, s := range added {
			a.pinned[s].removeOwner(app.FID)
		}
		delete(a.apps, app.FID)
		a.recomputeElastic()
	}

	if !app.Elastic {
		for _, g := range app.groups {
			sets := make([]*intervalSet, len(g.stages))
			for i, s := range g.stages {
				sets[i] = a.pinned[s]
			}
			off, ok := lowestCommonOffset(sets, g.demand, a.blocks)
			if !ok {
				rollback()
				return false
			}
			r := BlockRange{Lo: off, Hi: off + g.demand}
			for _, s := range g.stages {
				a.pinned[s].insert(interval{BlockRange: r, fid: app.FID, group: g.id})
				app.regions[s] = r
				added = append(added, s)
			}
		}
	}
	a.apps[app.FID] = app
	a.recomputeElastic()
	// Verify every elastic group everywhere received at least one block.
	for _, other := range a.apps {
		if !other.Elastic {
			continue
		}
		for _, g := range other.groups {
			for _, s := range g.stages {
				if other.regions[s].Size() < 1 {
					rollback()
					return false
				}
			}
		}
	}
	return true
}

// Release removes fid and lets elastic neighbors expand into the freed
// space. It returns the placements of apps whose regions changed.
func (a *Allocator) Release(fid uint16) ([]*Placement, error) {
	if _, ok := a.apps[fid]; !ok {
		return nil, fmt.Errorf("alloc: fid %d not resident", fid)
	}
	defer a.syncTel()
	before := a.snapshotElasticRegions()
	for _, s := range a.pinned {
		s.removeOwner(fid)
	}
	delete(a.apps, fid)
	a.recomputeElastic()
	return a.changedPlacements(before, fid), nil
}

// DebugRecomputes counts elastic-layout recomputations (test telemetry).
var DebugRecomputes int

// recomputeElastic rebuilds the elastic layout: progressive-filling shares
// (approximate max-min fairness, Section 4.2) followed by deterministic
// placement, largest shares first.
func (a *Allocator) recomputeElastic() {
	DebugRecomputes++
	for _, s := range a.elastic {
		s.ivs = s.ivs[:0]
	}
	type eg struct {
		app *App
		gi  int
	}
	var groups []eg
	for _, fid := range a.FIDs() {
		app := a.apps[fid]
		if !app.Elastic {
			continue
		}
		app.regions = map[int]BlockRange{}
		for gi := range app.groups {
			groups = append(groups, eg{app: app, gi: gi})
		}
	}
	if len(groups) == 0 {
		return
	}

	// Progressive filling: grant blocks round-robin to every group that can
	// still grow in all of its stages. Rounds grant a uniform step sized by
	// the most-contended stage, so the loop converges in O(log blocks)
	// rounds rather than one block at a time, while preserving the max-min
	// outcome (equal-step growth is exactly progressive filling, batched).
	// Hold back a sliver of each stage as alignment slack: aligned groups
	// with partially-overlapping stage sets fragment one another, and a
	// 100%-full waterfill would leave no common hole for late groups. The
	// slack is why steady-state utilization converges below 1.0 (the
	// paper's Figure 7a converges to ~0.75 for the same structural
	// reason).
	slack := a.blocks / a.tuning.SlackDivisor
	remaining := make([]int, a.cfg.NumStages)
	for s := range remaining {
		remaining[s] = a.blocks - a.pinned[s].used() - slack
		if remaining[s] < 0 {
			remaining[s] = 0
		}
	}
	shares := make([]int, len(groups))
	active := make([]bool, len(groups))
	for i := range active {
		active[i] = true
	}
	activeIn := make([]int, a.cfg.NumStages)
	for {
		for s := range activeIn {
			activeIn[s] = 0
		}
		anyActive := false
		for i, g := range groups {
			if !active[i] {
				continue
			}
			anyActive = true
			for _, s := range g.app.groups[g.gi].stages {
				activeIn[s]++
			}
		}
		if !anyActive {
			break
		}
		step := a.blocks
		for s, n := range activeIn {
			if n > 0 && remaining[s]/n < step {
				step = remaining[s] / n
			}
		}
		if step < 1 {
			step = 1
		}
		progressed := false
		for i, g := range groups {
			if !active[i] {
				continue
			}
			can := step
			for _, s := range g.app.groups[g.gi].stages {
				if remaining[s] < can {
					can = remaining[s]
				}
			}
			if can < 1 {
				active[i] = false
				continue
			}
			shares[i] += can
			for _, s := range g.app.groups[g.gi].stages {
				remaining[s] -= can
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Placement: largest first; aligned groups need one common offset
	// across all their stages. A group that cannot be placed at its share
	// shrinks until it fits.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sig := func(i int) string {
		st := groups[i].app.groups[groups[i].gi].stages
		b := make([]byte, 0, len(st))
		for _, s := range st {
			b = append(b, byte(s))
		}
		return string(b)
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		// Identical stage sets stack consecutively (their common offsets
		// chain without stranding); larger shares go first within a set.
		if si, sj := sig(i), sig(j); si != sj {
			return si < sj
		}
		if shares[i] != shares[j] {
			return shares[i] > shares[j]
		}
		if groups[i].app.FID != groups[j].app.FID {
			return groups[i].app.FID < groups[j].app.FID
		}
		return groups[i].gi < groups[j].gi
	})
	for _, i := range order {
		g := groups[i]
		grp := g.app.groups[g.gi]
		sets := make([]*intervalSet, 0, 2*len(grp.stages))
		for _, s := range grp.stages {
			sets = append(sets, a.pinned[s], a.elastic[s])
		}
		// Fit the largest placeable size <= the fair share. Placeability
		// is monotone in size, so binary-search instead of shrinking one
		// block at a time.
		place := func(size int) (int, bool) { return lowestCommonOffset(sets, size, a.blocks) }
		size := shares[i]
		off, ok := place(size)
		if !ok {
			lo, hi := 1, size-1 // largest feasible size in [lo, hi], if any
			for lo <= hi {
				mid := (lo + hi + 1) / 2
				if o, k := place(mid); k {
					off, ok, size = o, true, mid
					lo = mid + 1
				} else {
					hi = mid - 1
				}
			}
		}
		if !ok {
			// Skyline fallback: aligned stage sets can fragment each other
			// so badly that no common hole remains; placing at the common
			// skyline (above every existing interval in the group's
			// stages) always succeeds while any room is left, at the cost
			// of stranding the holes below.
			off = 0
			for _, set := range sets {
				if n := len(set.ivs); n > 0 {
					if top := set.ivs[n-1].Hi; top > off {
						off = top
					}
				}
			}
			if off < a.blocks {
				ok = true
				if size = shares[i]; off+size > a.blocks {
					size = a.blocks - off
				}
			}
		}
		if ok {
			r := BlockRange{Lo: off, Hi: off + size}
			for _, s := range grp.stages {
				a.elastic[s].insert(interval{BlockRange: r, fid: g.app.FID, group: grp.id})
				g.app.regions[s] = r
			}
		}
	}
}

// snapshotElasticRegions captures elastic apps' regions for change
// detection.
func (a *Allocator) snapshotElasticRegions() map[uint16]map[int]BlockRange {
	out := map[uint16]map[int]BlockRange{}
	for fid, app := range a.apps {
		if app.Elastic {
			out[fid] = app.Regions()
		}
	}
	return out
}

// changedPlacements lists apps whose regions differ from the snapshot,
// excluding skip (the newly admitted or released fid).
func (a *Allocator) changedPlacements(before map[uint16]map[int]BlockRange, skip uint16) []*Placement {
	var out []*Placement
	for _, fid := range a.FIDs() {
		if fid == skip {
			continue
		}
		app := a.apps[fid]
		if !app.Elastic {
			continue
		}
		old, had := before[fid]
		if !had {
			continue
		}
		if regionsEqual(old, app.regions) {
			continue
		}
		out = append(out, a.placementFor(app))
	}
	return out
}

func regionsEqual(x map[int]BlockRange, y map[int]BlockRange) bool {
	if len(x) != len(y) {
		return false
	}
	for s, r := range x {
		if y[s] != r {
			return false
		}
	}
	return true
}

// placementFor materializes an app's word-level placement.
func (a *Allocator) placementFor(app *App) *Placement {
	p := &Placement{FID: app.FID, MutantIdx: app.MutantIdx, Mutant: app.Mut.clone()}
	for i := range app.Cons.Accesses {
		logical := app.Mut[i]
		s := logical % a.cfg.NumStages
		r := app.regions[s]
		p.Accesses = append(p.Accesses, AccessPlacement{
			Logical: logical,
			Range: WordRange{
				Lo: uint32(r.Lo * a.cfg.BlockWords),
				Hi: uint32(r.Hi * a.cfg.BlockWords),
			},
		})
	}
	return p
}

// PlacementFor returns the current placement of a resident app. Apps in
// recovered form (no constraints on file after a controller restart) have
// no materializable placement and report false; see Readmit.
func (a *Allocator) PlacementFor(fid uint16) (*Placement, bool) {
	app, ok := a.apps[fid]
	if !ok || app.Cons == nil {
		return nil, false
	}
	return a.placementFor(app), true
}

// Utilization returns the fraction of total switch register memory
// currently allocated (Figures 6, 7a, 11).
func (a *Allocator) Utilization() float64 {
	used := 0
	for s := 0; s < a.cfg.NumStages; s++ {
		used += a.pinned[s].used() + a.elastic[s].used()
	}
	return float64(used) / float64(a.cfg.NumStages*a.blocks)
}

// ElasticTotals returns per-FID total blocks of elastic apps (the fairness
// population of Figure 7d).
func (a *Allocator) ElasticTotals() map[uint16]int {
	out := map[uint16]int{}
	for fid, app := range a.apps {
		if app.Elastic {
			out[fid] = app.TotalBlocks()
		}
	}
	return out
}

// StageUsed returns the allocated blocks in one stage (tests/inspection).
func (a *Allocator) StageUsed(s int) int {
	return a.pinned[s].used() + a.elastic[s].used()
}
