package alloc

import "sort"

// Online-defragmentation support: compaction re-places an inelastic app's
// alignment groups at the lowest feasible offsets, sliding them down into
// holes left by departed neighbors. Elastic apps never need compaction —
// the waterfill re-places them on every mutation — so the candidates are
// exactly the pinned tenants whose positions the books otherwise never
// revisit.

// Fragmentation computes the activermt_alloc_fragmentation gauge value
// directly from the books: the fraction of free blocks outside each
// stage's largest free hole. Zero when the pipeline is empty or every
// stage's free space is one contiguous hole.
func (a *Allocator) Fragmentation() float64 {
	totalFree, largestHoles := 0, 0
	for s := 0; s < a.cfg.NumStages; s++ {
		free, largest := stageHoles(a.pinned[s], a.elastic[s], a.blocks)
		totalFree += free
		largestHoles += largest
	}
	if totalFree == 0 {
		return 0
	}
	return 1 - float64(largestHoles)/float64(totalFree)
}

// groupMove is one planned group relocation.
type groupMove struct {
	gi       int // index into app.groups
	from, to BlockRange
}

// compactPlan simulates compacting app and returns the per-group moves and
// the gain (block·stages slid downward). The books are restored exactly
// before returning. ok is false when any group would land at or above its
// current offset (compaction must only ever move state down) or when the
// app's intervals cannot be located.
func (a *Allocator) compactPlan(app *App) (moves []groupMove, gain int, ok bool) {
	// Locate each group's current interval before touching the sets;
	// app.regions is not authoritative for multi-group apps sharing a
	// physical stage.
	old := make([]BlockRange, len(app.groups))
	for gi, g := range app.groups {
		found := false
		for _, iv := range a.pinned[g.stages[0]].ivs {
			if iv.fid == app.FID && iv.group == g.id {
				old[gi] = iv.BlockRange
				found = true
				break
			}
		}
		if !found {
			return nil, 0, false
		}
	}

	for _, s := range a.pinned {
		s.removeOwner(app.FID)
	}
	restore := func() {
		for _, s := range a.pinned {
			s.removeOwner(app.FID)
		}
		for gi, g := range app.groups {
			for _, s := range g.stages {
				a.pinned[s].insert(interval{BlockRange: old[gi], fid: app.FID, group: g.id})
			}
		}
	}

	ok = true
	improved := false
	for gi, g := range app.groups {
		sets := make([]*intervalSet, len(g.stages))
		for i, s := range g.stages {
			sets[i] = a.pinned[s]
		}
		off, found := lowestCommonOffset(sets, g.demand, a.blocks)
		if !found || off > old[gi].Lo {
			ok = false
			break
		}
		to := BlockRange{Lo: off, Hi: off + g.demand}
		if off < old[gi].Lo {
			improved = true
			gain += (old[gi].Lo - off) * len(g.stages)
		}
		moves = append(moves, groupMove{gi: gi, from: old[gi], to: to})
		for _, s := range g.stages {
			a.pinned[s].insert(interval{BlockRange: to, fid: app.FID, group: g.id})
		}
	}
	restore()
	if !ok || !improved {
		return nil, 0, false
	}
	return moves, gain, true
}

// CompactionCandidates returns the FIDs of inelastic resident apps that a
// compaction would move strictly downward, best gain first (ties by FID).
// eligible filters out pinned-in-place tenants (e.g. fabric replica
// members); nil means everything is eligible.
func (a *Allocator) CompactionCandidates(eligible func(uint16) bool) []uint16 {
	type cand struct {
		fid  uint16
		gain int
	}
	var cands []cand
	for _, fid := range a.FIDs() {
		app := a.apps[fid]
		if app.Elastic || app.Cons == nil || len(app.groups) == 0 {
			continue
		}
		if eligible != nil && !eligible(fid) {
			continue
		}
		if _, gain, ok := a.compactPlan(app); ok {
			cands = append(cands, cand{fid: fid, gain: gain})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].fid < cands[j].fid
	})
	out := make([]uint16, len(cands))
	for i, c := range cands {
		out[i] = c.fid
	}
	return out
}

// CompactResult reports one committed compaction.
type CompactResult struct {
	Placement   *Placement   // the victim's new placement
	Reallocated []*Placement // elastic neighbors moved by the re-waterfill
	BlocksMoved int          // block·stages slid to lower offsets
}

// CompactApp re-places fid's groups at the lowest feasible offsets. It
// commits only a strict improvement (every group at or below its current
// offset, at least one strictly below); otherwise the books are untouched
// and ok is false. The caller owns the data-plane half of the migration:
// snapshotting the old regions and restoring into the new ones around the
// reallocation protocol.
func (a *Allocator) CompactApp(fid uint16) (res *CompactResult, ok bool) {
	app, resident := a.apps[fid]
	if !resident || app.Elastic || app.Cons == nil || len(app.groups) == 0 {
		return nil, false
	}
	moves, _, ok := a.compactPlan(app)
	if !ok {
		return nil, false
	}
	defer a.syncTel()
	before := a.snapshotElasticRegions()

	for _, s := range a.pinned {
		s.removeOwner(fid)
	}
	app.regions = map[int]BlockRange{}
	blocksMoved := 0
	for _, mv := range moves {
		g := app.groups[mv.gi]
		for _, s := range g.stages {
			a.pinned[s].insert(interval{BlockRange: mv.to, fid: fid, group: g.id})
			app.regions[s] = mv.to
		}
		if mv.to.Lo < mv.from.Lo {
			blocksMoved += mv.to.Size() * len(g.stages)
		}
	}
	a.recomputeElastic()
	return &CompactResult{
		Placement:   a.placementFor(app),
		Reallocated: a.changedPlacements(before, fid),
		BlocksMoved: blocksMoved,
	}, true
}
