package alloc

import (
	"testing"
)

// blocksOf converts fid's placement into the per-stage block regions a
// restarted controller would read back from the switch tables.
func blocksOf(t *testing.T, a *Allocator, fid uint16) map[int]BlockRange {
	t.Helper()
	pl, ok := a.PlacementFor(fid)
	if !ok {
		t.Fatalf("fid %d has no placement", fid)
	}
	bw := a.Config().BlockWords
	out := map[int]BlockRange{}
	for _, ap := range pl.Accesses {
		s := ap.Logical % a.Config().NumStages
		out[s] = BlockRange{Lo: int(ap.Range.Lo) / bw, Hi: (int(ap.Range.Hi) + bw - 1) / bw}
	}
	return out
}

func TestRecoverThenReadmitElastic(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, cacheCons())
	if err != nil || res.Failed {
		t.Fatalf("allocate: %v %+v", err, res)
	}
	wantIdx := res.New.MutantIdx
	regions := blocksOf(t, a, 1)

	// Crash: fresh books, recover from "tables".
	b := newAllocator(t, testConfig())
	if err := b.Recover(1, regions); err != nil {
		t.Fatal(err)
	}
	if !b.Recovered(1) {
		t.Fatal("not in recovered state")
	}
	if _, ok := b.PlacementFor(1); ok {
		t.Fatal("recovered app must not answer PlacementFor (no constraints)")
	}
	// The client's retransmitted request restores full state, matching the
	// installed mutant.
	rres, err := b.Readmit(1, cacheCons())
	if err != nil || rres.Failed {
		t.Fatalf("readmit: %v %+v", err, rres)
	}
	if b.Recovered(1) {
		t.Error("still recovered after readmit")
	}
	if rres.New == nil || rres.New.MutantIdx != wantIdx {
		t.Errorf("readmitted mutant = %+v, want idx %d", rres.New, wantIdx)
	}
	assertNoOverlap(t, b)
}

func TestRecoverRejectsConflicts(t *testing.T) {
	a := newAllocator(t, testConfig())
	if err := a.Recover(1, map[int]BlockRange{3: {Lo: 0, Hi: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(2, map[int]BlockRange{3: {Lo: 2, Hi: 6}}); err == nil {
		t.Error("overlapping recovery accepted")
	}
	if err := a.Recover(1, map[int]BlockRange{5: {Lo: 0, Hi: 1}}); err == nil {
		t.Error("duplicate fid recovery accepted")
	}
	if err := a.Recover(QuarantineFID, map[int]BlockRange{0: {Lo: 0, Hi: 1}}); err == nil {
		t.Error("reserved fid recovery accepted")
	}
}

func TestReadmitMismatchedTablesFallsBack(t *testing.T) {
	a := newAllocator(t, testConfig())
	// Recovered regions that no cache mutant projects onto: a single stage.
	if err := a.Recover(1, map[int]BlockRange{0: {Lo: 0, Hi: 4}}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Readmit(1, cacheCons())
	if err != nil || res.Failed {
		t.Fatalf("readmit should fall back to a fresh allocation: %v %+v", err, res)
	}
	if res.New == nil {
		t.Fatal("no placement from fallback")
	}
	assertNoOverlap(t, a)
}

func TestReadmitStatelessAgainstRecoveredEvicts(t *testing.T) {
	a := newAllocator(t, testConfig())
	if err := a.Recover(1, map[int]BlockRange{0: {Lo: 0, Hi: 4}}); err != nil {
		t.Fatal(err)
	}
	cons := &Constraints{Name: "stateless", ProgLen: 4, IngressIdx: -1}
	if _, err := a.Readmit(1, cons); err == nil {
		t.Error("stateless readmit against recovered regions accepted")
	}
	if a.NumApps() != 0 {
		t.Errorf("apps = %d after eviction", a.NumApps())
	}
}

func TestQuarantineFencesBlocksAndMovesElastic(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, cacheCons())
	if err != nil || res.Failed {
		t.Fatal(err)
	}
	regions := blocksOf(t, a, 1)
	var stage int
	var r BlockRange
	for s, br := range regions {
		stage, r = s, br
		break
	}
	target := BlockRange{Lo: r.Lo, Hi: r.Lo + 1}
	if _, err := a.Quarantine(stage, target); err != nil {
		t.Fatal(err)
	}
	if !a.QuarantinedIn(stage, target.Lo) {
		t.Error("block not quarantined")
	}
	if a.QuarantinedBlocks() != 1 {
		t.Errorf("quarantined blocks = %d", a.QuarantinedBlocks())
	}
	// The elastic tenant was re-placed around the fence.
	after := blocksOf(t, a, 1)
	if got := after[stage]; got.Lo < target.Hi && target.Lo < got.Hi {
		t.Errorf("stage %d region %+v still overlaps quarantined %+v", stage, got, target)
	}
	// Re-fencing the same block reports nothing to move and no error.
	pls, err := a.Quarantine(stage, target)
	if err != nil || pls != nil {
		t.Errorf("re-quarantine: %v %v", pls, err)
	}
	assertNoOverlap(t, a)
}

func TestQuarantineRefusesPinnedOverlap(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, hhCons()) // inelastic, pinned at the bottom
	if err != nil || res.Failed {
		t.Fatal(err)
	}
	regions := blocksOf(t, a, 1)
	for s, r := range regions {
		if _, err := a.Quarantine(s, BlockRange{Lo: r.Lo, Hi: r.Lo + 1}); err == nil {
			t.Errorf("stage %d: quarantine overlapping pinned app accepted", s)
		}
		break
	}
}

func TestEvacuateReplacesVictimAroundFence(t *testing.T) {
	a := newAllocator(t, testConfig())
	if res, err := a.Allocate(1, cacheCons()); err != nil || res.Failed {
		t.Fatal(err)
	}
	regions := blocksOf(t, a, 1)
	quar := map[int][]BlockRange{}
	for s, r := range regions {
		quar[s] = []BlockRange{{Lo: r.Lo, Hi: r.Lo + 1}}
	}
	res, err := a.Evacuate(1, quar)
	if err != nil || res.Failed {
		t.Fatalf("evacuate: %v %+v", err, res)
	}
	if res.New == nil || res.New.FID != 1 {
		t.Fatalf("victim placement = %+v", res.New)
	}
	after := blocksOf(t, a, 1)
	for s, brs := range quar {
		for _, br := range brs {
			if !a.QuarantinedIn(s, br.Lo) {
				t.Errorf("stage %d block %d not fenced", s, br.Lo)
			}
			if got, ok := after[s]; ok && got.Lo < br.Hi && br.Lo < got.Hi {
				t.Errorf("stage %d: new region %+v overlaps fenced %+v", s, got, br)
			}
		}
	}
	assertNoOverlap(t, a)
}

func TestEvacuateRecoveredAppIsEvicted(t *testing.T) {
	a := newAllocator(t, testConfig())
	if err := a.Recover(1, map[int]BlockRange{2: {Lo: 10, Hi: 14}}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Evacuate(1, map[int][]BlockRange{2: {{Lo: 10, Hi: 11}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != "recovered-app-evicted" {
		t.Errorf("result = %+v", res)
	}
	if a.NumApps() != 0 {
		t.Errorf("apps = %d", a.NumApps())
	}
	if !a.QuarantinedIn(2, 10) {
		t.Error("block not fenced after eviction")
	}
}
