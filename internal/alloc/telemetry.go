package alloc

import (
	"sort"
	"strconv"

	"activermt/internal/telemetry"
)

// Telemetry holds the allocator's occupancy gauges. It is deliberately a
// separate object from the Allocator: the controller replaces its allocator
// wholesale on a crash (Crash builds a fresh one and Restart repopulates it
// from the switch tables), and re-registering metrics on every restart would
// panic the registry. Instead one Telemetry outlives every allocator
// incarnation — the controller hands it to each fresh allocator via
// SetTelemetry, and the gauges simply resync to the new books.
//
// All gauges update together inside one registry commit window (syncTel), so
// a concurrent Snapshot never observes a half-applied allocation: either the
// whole mutation (blocks, per-tenant counts, per-stage occupancy,
// fragmentation) is visible, or none of it is.
type Telemetry struct {
	reg *telemetry.Registry

	BlocksUsed        *telemetry.Gauge
	BlocksQuarantined *telemetry.Gauge
	Tenants           *telemetry.Gauge
	Utilization       *telemetry.FloatGauge
	Fragmentation     *telemetry.FloatGauge
	TenantBlocks      *telemetry.GaugeVec // label: fid
	StageBlocks       *telemetry.GaugeVec // label: stage

	// Durations of allocator entry points, observed by the controller
	// (virtual-time nanoseconds for protocol phases, wall-clock for compute).
	reallocs *telemetry.Counter

	seen map[uint16]bool // fids ever exported, so departures zero out
}

// NewTelemetry builds the allocator metric set and registers it.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	t := &Telemetry{
		reg:               reg,
		BlocksUsed:        telemetry.NewGauge("activermt_alloc_blocks_used", "Allocated blocks across all stages (pinned + elastic)."),
		BlocksQuarantined: telemetry.NewGauge("activermt_alloc_blocks_quarantined", "Blocks fenced off under the reserved quarantine owner."),
		Tenants:           telemetry.NewGauge("activermt_alloc_tenants", "Resident applications in the allocation books."),
		Utilization:       telemetry.NewFloatGauge("activermt_alloc_utilization", "Fraction of total register memory allocated (Figure 7a)."),
		Fragmentation:     telemetry.NewFloatGauge("activermt_alloc_fragmentation", "Fraction of free blocks outside each stage's largest free hole."),
		TenantBlocks:      telemetry.NewGaugeVec("activermt_alloc_tenant_blocks", "Blocks held per tenant across all stages.", "fid"),
		StageBlocks:       telemetry.NewGaugeVec("activermt_alloc_stage_blocks_used", "Allocated blocks per stage.", "stage"),
		reallocs:          telemetry.NewCounter("activermt_alloc_syncs_total", "Allocator mutations reflected into the gauges."),
		seen:              map[uint16]bool{},
	}
	reg.MustRegister(t.BlocksUsed, t.BlocksQuarantined, t.Tenants, t.Utilization,
		t.Fragmentation, t.TenantBlocks, t.StageBlocks, t.reallocs)
	return t
}

// SetTelemetry attaches (or hands over) the gauge set and resyncs it to this
// allocator's books. Safe to call with nil (detach).
func (a *Allocator) SetTelemetry(t *Telemetry) {
	a.tel = t
	a.syncTel()
}

// Telemetry returns the attached gauge set (nil when detached), so the
// controller can hand it to a replacement allocator after a crash.
func (a *Allocator) Telemetry() *Telemetry { return a.tel }

// syncTel republishes the occupancy gauges from the books. Called at the end
// of every public mutator; the whole update happens inside one registry
// commit window so scrapes are all-or-nothing.
func (a *Allocator) syncTel() {
	t := a.tel
	if t == nil {
		return
	}
	t.reg.BeginCommit()
	defer t.reg.EndCommit()
	t.reallocs.Inc()

	used, quarantined := 0, 0
	totalFree, largestHoles := 0, 0
	for s := 0; s < a.cfg.NumStages; s++ {
		su := a.pinned[s].used() + a.elastic[s].used()
		used += su
		t.StageBlocks.With(strconv.Itoa(s)).Set(int64(su))
		for _, iv := range a.pinned[s].ivs {
			if iv.fid == QuarantineFID {
				quarantined += iv.Size()
			}
		}
		free, largest := stageHoles(a.pinned[s], a.elastic[s], a.blocks)
		totalFree += free
		largestHoles += largest
	}
	t.BlocksUsed.Set(int64(used))
	t.BlocksQuarantined.Set(int64(quarantined))
	t.Tenants.Set(int64(len(a.apps)))
	t.Utilization.Set(float64(used) / float64(a.cfg.NumStages*a.blocks))
	frag := 0.0
	if totalFree > 0 {
		frag = 1 - float64(largestHoles)/float64(totalFree)
	}
	t.Fragmentation.Set(frag)

	for fid, app := range a.apps {
		t.seen[fid] = true
		t.TenantBlocks.With(strconv.Itoa(int(fid))).Set(int64(app.TotalBlocks()))
	}
	for fid := range t.seen {
		if _, resident := a.apps[fid]; !resident {
			t.TenantBlocks.With(strconv.Itoa(int(fid))).Set(0)
		}
	}
}

// stageHoles returns the free blocks of one stage and the size of its
// largest contiguous free hole, merging the pinned and elastic interval sets.
func stageHoles(pinned, elastic *intervalSet, blocks int) (free, largest int) {
	ivs := make([]BlockRange, 0, len(pinned.ivs)+len(elastic.ivs))
	for _, iv := range pinned.ivs {
		ivs = append(ivs, iv.BlockRange)
	}
	for _, iv := range elastic.ivs {
		ivs = append(ivs, iv.BlockRange)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	at := 0
	for _, r := range ivs {
		if r.Lo > at {
			hole := r.Lo - at
			free += hole
			if hole > largest {
				largest = hole
			}
		}
		if r.Hi > at {
			at = r.Hi
		}
	}
	if blocks > at {
		hole := blocks - at
		free += hole
		if hole > largest {
			largest = hole
		}
	}
	return free, largest
}
