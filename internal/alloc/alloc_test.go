package alloc

import (
	"testing"
	"testing/quick"
)

// cacheCons mirrors the paper's Listing 1 cache query: 11 instructions,
// memory accesses at (0-based) 1, 4, 8, RTS at 7, elastic, one alignment
// group (the single-MAR bucket layout needs identical offsets per stage).
func cacheCons() *Constraints {
	return &Constraints{
		Name:       "cache",
		ProgLen:    11,
		IngressIdx: 7,
		Elastic:    true,
		Accesses: []Access{
			{Index: 1, AlignGroup: 1},
			{Index: 4, AlignGroup: 1},
			{Index: 8, AlignGroup: 1},
		},
	}
}

// hhCons is an inelastic heavy-hitter: two 16-block count-min-sketch rows.
func hhCons() *Constraints {
	return &Constraints{
		Name:       "hh",
		ProgLen:    14,
		IngressIdx: -1,
		Accesses: []Access{
			{Index: 7, Demand: 16},
			{Index: 12, Demand: 16},
		},
	}
}

// lbCons is an inelastic load balancer: three small accesses plus a 2-block
// VIP pool.
func lbCons() *Constraints {
	return &Constraints{
		Name:       "lb",
		ProgLen:    12,
		IngressIdx: -1,
		Accesses: []Access{
			{Index: 2, Demand: 1},
			{Index: 5, Demand: 1},
			{Index: 8, Demand: 2},
		},
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func newAllocator(t *testing.T, cfg Config) *Allocator {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestComputeBoundsListing1MostConstrained(t *testing.T) {
	b, err := ComputeBounds(cacheCons(), MostConstrained, 20, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantLB := []int{1, 4, 8}
	wantUB := []int{3, 6, 10} // paper's UB=[4,7,11] one-based
	wantGap := []int{2, 3, 4}
	for i := range wantLB {
		if b.LB[i] != wantLB[i] || b.UB[i] != wantUB[i] || b.Gap[i] != wantGap[i] {
			t.Fatalf("bounds[%d] = LB %d UB %d Gap %d, want %d/%d/%d",
				i, b.LB[i], b.UB[i], b.Gap[i], wantLB[i], wantUB[i], wantGap[i])
		}
	}
}

func TestComputeBoundsListing1NoIngress(t *testing.T) {
	c := cacheCons()
	c.IngressIdx = -1
	b, err := ComputeBounds(c, MostConstrained, 20, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantUB := []int{10, 13, 17} // paper's UB=[11,14,18] one-based
	for i := range wantUB {
		if b.UB[i] != wantUB[i] {
			t.Fatalf("UB[%d] = %d, want %d", i, b.UB[i], wantUB[i])
		}
	}
}

func TestComputeBoundsLeastConstrained(t *testing.T) {
	b, err := ComputeBounds(cacheCons(), LeastConstrained, 20, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxStages != 40 {
		t.Fatalf("MaxStages = %d, want 40", b.MaxStages)
	}
	// Ingress clamp does not apply; rigid tail from 40 stages.
	if b.UB[2] != 37 || b.UB[1] != 33 || b.UB[0] != 30 {
		t.Fatalf("UB = %v", b.UB)
	}
}

func TestComputeBoundsInfeasible(t *testing.T) {
	c := &Constraints{
		ProgLen:    25,
		IngressIdx: 24, // an ingress-only instruction that can never reach ingress
		Accesses:   []Access{{Index: 1, Demand: 1}},
	}
	if _, err := ComputeBounds(c, MostConstrained, 20, 10, 2); err == nil {
		t.Error("infeasible constraints accepted")
	}
}

func TestConstraintsValidate(t *testing.T) {
	bad := []*Constraints{
		{ProgLen: 0, Accesses: []Access{{Index: 0}}},
		{ProgLen: 5, Accesses: []Access{{Index: 2}, {Index: 1}}},   // out of order
		{ProgLen: 5, Accesses: []Access{{Index: 7}}},               // beyond program
		{ProgLen: 5, IngressIdx: 9, Accesses: []Access{{Index: 1}}},
		{ProgLen: 5, Accesses: []Access{{Index: 1, Demand: -1}}},
		{ProgLen: 20, Accesses: make([]Access, 9)},                 // too many slots
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := cacheCons().Validate(); err != nil {
		t.Errorf("good constraints rejected: %v", err)
	}
}

func TestConstraintsRequestRoundTrip(t *testing.T) {
	c := cacheCons()
	r, err := c.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgLen != c.ProgLen || got.IngressIdx != c.IngressIdx || got.Elastic != c.Elastic {
		t.Errorf("meta mismatch: %+v", got)
	}
	for i := range c.Accesses {
		if got.Accesses[i] != c.Accesses[i] {
			t.Errorf("access %d: %+v != %+v", i, got.Accesses[i], c.Accesses[i])
		}
	}
}

func TestEnumerateMutantsCacheMostConstrained(t *testing.T) {
	b, err := ComputeBounds(cacheCons(), MostConstrained, 20, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms := EnumerateMutants(b, 20)
	// x1 in [1,3], x2 >= x1+3 <= 6, x3 >= x2+4 <= 10: 6+3+1 = 10 mutants.
	if len(ms) != 10 {
		t.Fatalf("mutant count = %d, want 10", len(ms))
	}
	// First mutant is the most compact placement.
	if ms[0][0] != 1 || ms[0][1] != 4 || ms[0][2] != 8 {
		t.Errorf("first mutant = %v", ms[0])
	}
	// All satisfy the constraints.
	for _, m := range ms {
		if m[0] < 1 || m[1]-m[0] < 3 || m[2]-m[1] < 4 || m[2] > 10 {
			t.Errorf("invalid mutant %v", m)
		}
	}
	if CountMutants(b, 20) != 10 {
		t.Error("CountMutants disagrees")
	}
}

func TestEnumerateMutantsLCLargerThanMC(t *testing.T) {
	bMC, _ := ComputeBounds(cacheCons(), MostConstrained, 20, 10, 2)
	bLC, _ := ComputeBounds(cacheCons(), LeastConstrained, 20, 10, 2)
	nMC := CountMutants(bMC, 20)
	nLC := CountMutants(bLC, 20)
	if nLC <= nMC*10 {
		t.Errorf("LC mutants (%d) should vastly exceed MC (%d)", nLC, nMC)
	}
}

func TestEnumerateMutantsPhysicalCollision(t *testing.T) {
	// Two accesses 20 logical stages apart would share a physical stage.
	b := &Bounds{LB: []int{0, 20}, UB: []int{0, 20}, Gap: []int{1, 20}, MaxStages: 40}
	if got := CountMutants(b, 20); got != 0 {
		t.Errorf("colliding mutants = %d, want 0", got)
	}
}

func TestMutantPasses(t *testing.T) {
	m := Mutant{1, 4, 8}
	if p := m.Passes(11, []int{1, 4, 8}, 20); p != 1 {
		t.Errorf("compact passes = %d", p)
	}
	m2 := Mutant{1, 4, 25}
	if p := m2.Passes(11, []int{1, 4, 8}, 20); p != 2 {
		t.Errorf("stretched passes = %d", p)
	}
	if p := (Mutant{}).Passes(3, nil, 20); p != 1 {
		t.Errorf("empty mutant passes = %d", p)
	}
}

func TestAllocateSingleElastic(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, cacheCons())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.Reason)
	}
	if res.New == nil || len(res.New.Accesses) != 3 {
		t.Fatalf("placement = %+v", res.New)
	}
	// Aligned group: identical word ranges in all three stages.
	r0 := res.New.Accesses[0].Range
	for i, ap := range res.New.Accesses {
		if ap.Range != r0 {
			t.Errorf("access %d range %v != %v (alignment broken)", i, ap.Range, r0)
		}
	}
	// A lone elastic app gets essentially the whole pool in its stages
	// (minus the allocator's alignment slack).
	if got := r0.Hi - r0.Lo; got < uint32(testConfig().StageWords)*9/10 {
		t.Errorf("lone elastic app got %d words, want ~%d", got, testConfig().StageWords)
	}
	if len(res.Reallocated) != 0 {
		t.Errorf("spurious reallocations: %v", res.Reallocated)
	}
	if a.NumApps() != 1 {
		t.Errorf("NumApps = %d", a.NumApps())
	}
}

func TestAllocateTwoElasticDisjointStages(t *testing.T) {
	a := newAllocator(t, testConfig())
	r1, _ := a.Allocate(1, cacheCons())
	r2, err := a.Allocate(2, cacheCons())
	if err != nil || r2.Failed {
		t.Fatalf("second cache failed: %v %+v", err, r2)
	}
	// Worst-fit spreads the second instance to untouched stages.
	used := map[int]bool{}
	for _, ap := range r1.New.Accesses {
		used[ap.Logical%20] = true
	}
	for _, ap := range r2.New.Accesses {
		if used[ap.Logical%20] {
			t.Errorf("second instance shares stage %d with first", ap.Logical%20)
		}
	}
	// No reallocation needed: disjoint stages.
	if len(r2.Reallocated) != 0 {
		t.Errorf("unexpected reallocations: %d", len(r2.Reallocated))
	}
}

func TestElasticSharingAndFairness(t *testing.T) {
	cfg := testConfig()
	a := newAllocator(t, cfg)
	// Enough cache instances that stages must be shared (only stages 1..10
	// are reachable under most-constrained bounds).
	n := 8
	for i := 1; i <= n; i++ {
		res, err := a.Allocate(uint16(i), cacheCons())
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("instance %d failed: %s", i, res.Reason)
		}
	}
	totals := a.ElasticTotals()
	if len(totals) != n {
		t.Fatalf("elastic totals = %v", totals)
	}
	min, max := 1<<30, 0
	for _, v := range totals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 {
		t.Fatal("an instance got zero blocks")
	}
	if float64(max)/float64(min) > 2.5 {
		t.Errorf("unfair shares: min %d max %d", min, max)
	}
}

func TestAllocateInelasticPinnedAtBottom(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, hhCons())
	if err != nil || res.Failed {
		t.Fatalf("hh failed: %v %+v", err, res)
	}
	for _, ap := range res.New.Accesses {
		if ap.Range.Lo != 0 {
			t.Errorf("inelastic access not pinned at pool start: %+v", ap)
		}
		if ap.Range.Hi != uint32(16*testConfig().BlockWords) {
			t.Errorf("demand not honored: %+v", ap)
		}
	}
}

func TestInelasticNeverReallocated(t *testing.T) {
	a := newAllocator(t, testConfig())
	a.Allocate(1, hhCons())
	hhBefore, _ := a.PlacementFor(1)
	// Admit elastic + more inelastic apps into the same stages.
	for i := 2; i <= 10; i++ {
		a.Allocate(uint16(i), cacheCons())
	}
	a.Allocate(20, lbCons())
	hhAfter, _ := a.PlacementFor(1)
	for i := range hhBefore.Accesses {
		if hhBefore.Accesses[i] != hhAfter.Accesses[i] {
			t.Errorf("inelastic app moved: %+v -> %+v", hhBefore.Accesses[i], hhAfter.Accesses[i])
		}
	}
}

func TestElasticShrinksForInelastic(t *testing.T) {
	cfg := testConfig()
	a := newAllocator(t, cfg)
	// Fill the cache-reachable stages with caches, then admit an inelastic
	// app confined (by an ingress-only instruction) to those same stages.
	for i := 1; i <= 6; i++ {
		a.Allocate(uint16(i), cacheCons())
	}
	utilBefore := a.Utilization()
	confined := &Constraints{
		Name:       "confined-hh",
		ProgLen:    9,
		IngressIdx: 8,
		Accesses:   []Access{{Index: 3, Demand: 16}, {Index: 7, Demand: 16}},
	}
	res, err := a.Allocate(100, confined)
	if err != nil || res.Failed {
		t.Fatalf("confined hh failed after caches: %v %+v", err, res)
	}
	if len(res.Reallocated) == 0 {
		t.Error("no elastic app yielded memory")
	}
	// Aligned elastic groups capped by their most-contended stage can
	// strand a little space in their other stages; allow a small dip.
	if a.Utilization() < utilBefore-0.02 {
		t.Errorf("utilization dropped: %f -> %f", utilBefore, a.Utilization())
	}
}

func TestAllocateDuplicateFID(t *testing.T) {
	a := newAllocator(t, testConfig())
	a.Allocate(1, cacheCons())
	if _, err := a.Allocate(1, cacheCons()); err == nil {
		t.Error("duplicate fid accepted")
	}
}

func TestAllocateInelasticZeroDemand(t *testing.T) {
	a := newAllocator(t, testConfig())
	c := hhCons()
	c.Accesses[0].Demand = 0
	if _, err := a.Allocate(1, c); err == nil {
		t.Error("inelastic zero demand accepted")
	}
}

func TestCapacityExhaustion(t *testing.T) {
	a := newAllocator(t, testConfig())
	// HH mutants under most-constrained reach few stages; 16-block rows
	// exhaust them after ~NumBlocks/16 per stage.
	fails := 0
	admitted := 0
	for i := 1; i <= 200; i++ {
		res, err := a.Allocate(uint16(i), hhCons())
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			fails++
		} else {
			admitted++
		}
	}
	if fails == 0 {
		t.Fatal("no allocation failures after 200 heavy hitters")
	}
	if admitted < 20 || admitted > 180 {
		t.Errorf("admitted = %d, expected tens of instances", admitted)
	}
	// Failures must not corrupt state: utilization is still sane.
	if u := a.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %f", u)
	}
}

func TestReleaseExpandsNeighbors(t *testing.T) {
	a := newAllocator(t, testConfig())
	a.Allocate(1, cacheCons())
	for i := 2; i <= 9; i++ {
		a.Allocate(uint16(i), cacheCons())
	}
	before := a.ElasticTotals()
	realloc, err := a.Release(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(realloc) == 0 {
		t.Error("no neighbor expanded after release")
	}
	after := a.ElasticTotals()
	if _, still := after[1]; still {
		t.Error("released app still present")
	}
	grew := false
	for fid, v := range after {
		if v > before[fid] {
			grew = true
		}
	}
	if !grew {
		t.Error("no app grew after release")
	}
	if _, err := a.Release(1); err == nil {
		t.Error("double release accepted")
	}
}

func TestUtilizationMonotoneUnderArrivals(t *testing.T) {
	a := newAllocator(t, testConfig())
	prev := 0.0
	for i := 1; i <= 12; i++ {
		res, err := a.Allocate(uint16(i), cacheCons())
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			continue
		}
		u := a.Utilization()
		if u+1e-9 < prev {
			t.Errorf("utilization regressed at %d: %f -> %f", i, prev, u)
		}
		prev = u
	}
	if prev <= 0.3 {
		t.Errorf("cache workload utilization = %f, expected substantial", prev)
	}
}

func TestNoOverlapInvariant(t *testing.T) {
	cfg := testConfig()
	a := newAllocator(t, cfg)
	mix := []func() *Constraints{cacheCons, hhCons, lbCons}
	for i := 1; i <= 60; i++ {
		a.Allocate(uint16(i), mix[i%3]())
		if i%7 == 0 {
			a.Release(uint16(i - 3))
		}
	}
	assertNoOverlap(t, a)
}

// assertNoOverlap checks the core isolation invariant: within every stage,
// no two apps' regions intersect and all regions are in bounds.
func assertNoOverlap(t *testing.T, a *Allocator) {
	t.Helper()
	type owned struct {
		fid uint16
		r   BlockRange
	}
	perStage := map[int][]owned{}
	for _, fid := range a.FIDs() {
		app, _ := a.App(fid)
		for s, r := range app.Regions() {
			if r.Lo < 0 || r.Hi > a.Config().BlocksPerStage() || r.Lo >= r.Hi {
				t.Fatalf("fid %d stage %d bad range %+v", fid, s, r)
			}
			perStage[s] = append(perStage[s], owned{fid, r})
		}
	}
	for s, list := range perStage {
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if list[i].r.overlaps(list[j].r) {
					t.Fatalf("stage %d: fid %d %+v overlaps fid %d %+v",
						s, list[i].fid, list[i].r, list[j].fid, list[j].r)
				}
			}
		}
	}
}

func TestNoOverlapProperty(t *testing.T) {
	// Property test: random arrival/departure sequences never violate
	// isolation, and elastic apps always hold at least one block per
	// accessed stage.
	f := func(seed uint8, ops [24]uint8) bool {
		a, err := New(testConfig())
		if err != nil {
			return false
		}
		mix := []func() *Constraints{cacheCons, hhCons, lbCons}
		resident := []uint16{}
		next := uint16(1)
		for _, op := range ops {
			if op%4 == 3 && len(resident) > 0 {
				victim := resident[int(op/4)%len(resident)]
				if _, err := a.Release(victim); err != nil {
					return false
				}
				out := resident[:0]
				for _, fid := range resident {
					if fid != victim {
						out = append(out, fid)
					}
				}
				resident = out
				continue
			}
			res, err := a.Allocate(next, mix[int(op)%3]())
			if err != nil {
				return false
			}
			if !res.Failed {
				resident = append(resident, next)
			}
			next++
		}
		// Isolation invariant.
		seen := map[int][]BlockRange{}
		for _, fid := range a.FIDs() {
			app, _ := a.App(fid)
			if app.Elastic && app.TotalBlocks() == 0 {
				return false
			}
			for s, r := range app.Regions() {
				for _, o := range seen[s] {
					if r.overlaps(o) {
						return false
					}
				}
				seen[s] = append(seen[s], r)
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

func TestSchemesDiffer(t *testing.T) {
	// Best-fit packs the second cache into the same stages; worst-fit
	// spreads. Compare stage footprints.
	run := func(s Scheme) map[int]bool {
		cfg := testConfig()
		cfg.Scheme = s
		a := newAllocator(t, cfg)
		a.Allocate(1, cacheCons())
		r2, _ := a.Allocate(2, cacheCons())
		out := map[int]bool{}
		for _, ap := range r2.New.Accesses {
			out[ap.Logical%20] = true
		}
		return out
	}
	wf := run(WorstFit)
	bf := run(BestFit)
	same := true
	for s := range wf {
		if !bf[s] {
			same = false
		}
	}
	if same {
		t.Error("worst-fit and best-fit chose identical stages for the contended instance")
	}
}

func TestFirstFitTakesFirstFeasible(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = FirstFit
	a := newAllocator(t, cfg)
	res, _ := a.Allocate(1, cacheCons())
	if res.New.MutantIdx != 0 {
		t.Errorf("first-fit chose mutant %d, want 0", res.New.MutantIdx)
	}
}

func TestMinReallocAvoidsDisturbance(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = MinRealloc
	a := newAllocator(t, cfg)
	for i := 1; i <= 2; i++ {
		a.Allocate(uint16(i), cacheCons())
	}
	// A 3rd instance still fits in disjoint stages (the paper's Figure 9b:
	// the first three instances obtain exclusive stages), so min-realloc
	// must disturb no one.
	res, _ := a.Allocate(3, cacheCons())
	if res.Failed {
		t.Fatal("minrealloc failed")
	}
	if len(res.Reallocated) != 0 {
		t.Errorf("minrealloc disturbed %d apps", len(res.Reallocated))
	}
}

func TestMaxRegionsPerStageCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRegionsPerStage = 3
	a := newAllocator(t, cfg)
	fails := 0
	for i := 1; i <= 40; i++ {
		res, err := a.Allocate(uint16(i), cacheCons())
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			fails++
		}
	}
	if fails == 0 {
		t.Error("TCAM region cap never bound")
	}
	// Invariant: no stage exceeds the cap.
	counts := map[int]int{}
	for _, fid := range a.FIDs() {
		app, _ := a.App(fid)
		for s := range app.Regions() {
			counts[s]++
		}
	}
	for s, n := range counts {
		if n > 3 {
			t.Errorf("stage %d has %d regions > cap", s, n)
		}
	}
}

func TestPlacementForMissing(t *testing.T) {
	a := newAllocator(t, testConfig())
	if _, ok := a.PlacementFor(9); ok {
		t.Error("placement for absent fid")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{NumStages: 20, StageWords: 10, BlockWords: 0},
		{NumStages: 20, StageWords: 10, BlockWords: 100},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestSchemeAndPolicyStrings(t *testing.T) {
	if WorstFit.String() != "wf" || BestFit.String() != "bf" || FirstFit.String() != "ff" || MinRealloc.String() != "realloc" {
		t.Error("scheme names wrong")
	}
	if MostConstrained.String() != "most-constrained" || LeastConstrained.String() != "least-constrained" {
		t.Error("policy names wrong")
	}
}

func TestLowestCommonOffset(t *testing.T) {
	s1 := &intervalSet{}
	s2 := &intervalSet{}
	s1.insert(interval{BlockRange: BlockRange{Lo: 0, Hi: 4}})
	s2.insert(interval{BlockRange: BlockRange{Lo: 6, Hi: 10}})
	off, ok := lowestCommonOffset([]*intervalSet{s1, s2}, 2, 16)
	if !ok || off != 4 {
		t.Errorf("offset = %d, %v; want 4", off, ok)
	}
	// Size 3 cannot fit between 4 and 6: lands at 10.
	off, ok = lowestCommonOffset([]*intervalSet{s1, s2}, 3, 16)
	if !ok || off != 10 {
		t.Errorf("offset = %d, %v; want 10", off, ok)
	}
	if _, ok = lowestCommonOffset([]*intervalSet{s1, s2}, 7, 16); ok {
		t.Error("impossible placement accepted")
	}
	if _, ok = lowestCommonOffset(nil, 0, 16); ok {
		t.Error("zero size accepted")
	}
}

func TestIntervalSetOps(t *testing.T) {
	s := &intervalSet{}
	s.insert(interval{BlockRange: BlockRange{Lo: 4, Hi: 8}, fid: 1})
	s.insert(interval{BlockRange: BlockRange{Lo: 0, Hi: 2}, fid: 2})
	if s.ivs[0].Lo != 0 {
		t.Error("not sorted")
	}
	if s.used() != 6 {
		t.Errorf("used = %d", s.used())
	}
	if _, ok := s.conflict(BlockRange{Lo: 2, Hi: 4}); ok {
		t.Error("false conflict")
	}
	if _, ok := s.conflict(BlockRange{Lo: 3, Hi: 5}); !ok {
		t.Error("missed conflict")
	}
	if n := s.removeOwner(1); n != 1 {
		t.Errorf("removed %d", n)
	}
	if s.used() != 2 {
		t.Errorf("used after remove = %d", s.used())
	}
}

func TestGranularityAffectsCapacity(t *testing.T) {
	// Coarser blocks, fewer of them: the 16-block HH demand means the same
	// words at 1KB granularity but fewer instances fit when each block is
	// 4KB (demand stays in blocks, as in the request format).
	run := func(blockWords int) int {
		cfg := testConfig()
		cfg.BlockWords = blockWords
		a := newAllocator(t, cfg)
		admitted := 0
		for fid := uint16(1); fid <= 100; fid++ {
			res, err := a.Allocate(fid, hhCons())
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				break
			}
			admitted++
		}
		return admitted
	}
	fine := run(256)    // 1KB blocks: 368/stage
	coarse := run(1024) // 4KB blocks: 92/stage
	if coarse >= fine {
		t.Errorf("coarse capacity %d >= fine %d", coarse, fine)
	}
	// (The exact paper capacity of 23 comes from the real HH program's
	// single most-constrained mutant; this local constraint set has more
	// placement freedom — see apps.TestLBCapacityIs368 and
	// experiments.TestPureWorkloadCapacities for the exact numbers.)
}

func TestReleaseAlignedGroupsRestoresSpace(t *testing.T) {
	a := newAllocator(t, testConfig())
	// Fill with aligned caches, release all, then verify an inelastic app
	// can claim a clean pool bottom.
	for i := 1; i <= 6; i++ {
		a.Allocate(uint16(i), cacheCons())
	}
	for i := 1; i <= 6; i++ {
		if _, err := a.Release(uint16(i)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Utilization() != 0 {
		t.Fatalf("utilization %f after releasing everything", a.Utilization())
	}
	res, err := a.Allocate(100, hhCons())
	if err != nil || res.Failed {
		t.Fatalf("post-release allocation failed: %v %+v", err, res)
	}
	for _, ap := range res.New.Accesses {
		if ap.Range.Lo != 0 {
			t.Errorf("inelastic not at pool bottom after cleanup: %+v", ap)
		}
	}
}

func TestResultCountsMutants(t *testing.T) {
	a := newAllocator(t, testConfig())
	res, err := a.Allocate(1, cacheCons())
	if err != nil {
		t.Fatal(err)
	}
	if res.MutantsTotal != 10 {
		t.Errorf("MutantsTotal = %d, want 10", res.MutantsTotal)
	}
	if res.MutantsFeasible != 10 {
		t.Errorf("MutantsFeasible = %d on an empty switch", res.MutantsFeasible)
	}
}

func TestElasticTotalsExcludeInelastic(t *testing.T) {
	a := newAllocator(t, testConfig())
	a.Allocate(1, cacheCons())
	a.Allocate(2, hhCons())
	totals := a.ElasticTotals()
	if _, hasHH := totals[2]; hasHH {
		t.Error("inelastic app in elastic totals")
	}
	if totals[1] == 0 {
		t.Error("elastic total zero")
	}
}

func TestFIDsSorted(t *testing.T) {
	a := newAllocator(t, testConfig())
	for _, fid := range []uint16{5, 1, 3} {
		a.Allocate(fid, cacheCons())
	}
	fids := a.FIDs()
	for i := 1; i < len(fids); i++ {
		if fids[i-1] >= fids[i] {
			t.Fatalf("FIDs not sorted: %v", fids)
		}
	}
}

func TestAllocationDeterminism(t *testing.T) {
	// The same arrival sequence must produce byte-identical placements —
	// client and switch independently reproduce enumeration and ranking,
	// so any nondeterminism here would desynchronize them on real wires.
	run := func() map[uint16][]AccessPlacement {
		a := newAllocator(t, testConfig())
		mix := []func() *Constraints{cacheCons, hhCons, lbCons}
		for i := 1; i <= 40; i++ {
			a.Allocate(uint16(i), mix[i%3]())
			if i%5 == 0 {
				a.Release(uint16(i - 2))
			}
		}
		out := map[uint16][]AccessPlacement{}
		for _, fid := range a.FIDs() {
			if pl, ok := a.PlacementFor(fid); ok {
				out[fid] = pl.Accesses
			}
		}
		return out
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("census differs: %d vs %d", len(x), len(y))
	}
	for fid, ax := range x {
		ay := y[fid]
		if len(ax) != len(ay) {
			t.Fatalf("fid %d arity differs", fid)
		}
		for i := range ax {
			if ax[i] != ay[i] {
				t.Fatalf("fid %d access %d: %+v vs %+v", fid, i, ax[i], ay[i])
			}
		}
	}
}
