package alloc

// Mutant is one placement of a program's memory accesses: the logical stage
// each access executes in. Mutants are semantically identical programs that
// differ only in inserted NOPs (Section 4.1, Figure 4).
type Mutant []int

// clone copies the mutant.
func (m Mutant) clone() Mutant {
	out := make(Mutant, len(m))
	copy(out, m)
	return out
}

// MaxMutants caps enumeration as a safety valve against pathological
// constraint sets; the paper's applications stay in the hundreds-to-
// thousands range.
const MaxMutants = 1 << 20

// EnumerateMutants lists, in deterministic lexicographic order, every
// placement vector x with LB <= x <= UB and x[i]-x[i-1] >= Gap[i], whose
// accesses land in distinct physical stages of a numStages-deep pipeline
// (two accesses cannot share one stage's single register port, even across
// passes, because protection grants one region per FID per stage).
//
// The shared, deterministic order is load-bearing: allocation responses name
// the chosen mutant by its index in this order, and client and switch
// enumerate independently (Section 3.3).
func EnumerateMutants(b *Bounds, numStages int) []Mutant {
	m := len(b.LB)
	var out []Mutant
	x := make(Mutant, m)

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			out = append(out, x.clone())
			return len(out) < MaxMutants
		}
		lo := b.LB[i]
		if i > 0 {
			if v := x[i-1] + b.Gap[i]; v > lo {
				lo = v
			}
		}
		for v := lo; v <= b.UB[i]; v++ {
			if collides(x[:i], v, numStages) {
				continue
			}
			x[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

func collides(prefix []int, v, numStages int) bool {
	for _, p := range prefix {
		if p%numStages == v%numStages {
			return true
		}
	}
	return false
}

// CountMutants returns the size of the feasibility region (the paper quotes
// these counts in Section 6.1).
func CountMutants(b *Bounds, numStages int) int {
	return len(EnumerateMutants(b, numStages))
}

// Passes returns the number of pipeline passes a mutant requires for a
// program of the given final length (original length plus inserted NOPs).
func (m Mutant) Passes(origLen int, origAccesses []int, numStages int) int {
	if len(m) == 0 {
		return 1
	}
	last := len(m) - 1
	finalLen := origLen + (m[last] - origAccesses[last])
	return (finalLen + numStages - 1) / numStages
}
