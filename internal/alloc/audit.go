package alloc

import "fmt"

// AuditBooks cross-checks the allocator's per-stage interval accounting
// against the per-app region books: in every stage, the blocks held by the
// pinned and elastic interval sets must equal the blocks granted to
// resident applications in that stage plus the quarantine fences. A
// mismatch means blocks leaked — a freed interval survived its app, or an
// app's book lost track of an interval. This is the allocator invariant the
// long-soak harness checks after every churn epoch: thousands of admit/
// release/reallocate cycles must never bleed capacity.
func (a *Allocator) AuditBooks() error {
	for s := 0; s < a.cfg.NumStages; s++ {
		used := a.StageUsed(s)
		booked := 0
		for _, app := range a.apps {
			if r, ok := app.regions[s]; ok {
				booked += r.Size()
			}
		}
		quar := 0
		for _, iv := range a.pinned[s].ivs {
			if iv.fid == QuarantineFID {
				quar += iv.Size()
			}
		}
		if used != booked+quar {
			return fmt.Errorf("alloc: stage %d books leak: interval sets hold %d blocks, apps book %d plus %d quarantined",
				s, used, booked, quar)
		}
	}
	return nil
}
