package alloc

import (
	"fmt"
	"sort"
)

// Controller crash-recovery and memory-quarantine support. The switch
// tables (protection TCAM regions) survive a control-plane crash, so a
// restarted controller rebuilds its allocation books by reading them back:
// each resident FID is re-registered at its installed regions, pinned in
// place and without constraints (those live client-side). When the client's
// retransmitted allocation request arrives, Readmit upgrades the recovered
// entry to full state by matching the constraints against the installed
// placement. Quarantine/Evacuate implement graceful degradation when a
// stage's SRAM is corrupted: the bad blocks are fenced off under a reserved
// owner and the victim application is re-placed around them.

// QuarantineFID is the reserved interval owner of quarantined blocks; it is
// never a valid application FID.
const QuarantineFID uint16 = 0xFFFF

// Recover re-registers fid as resident at the given per-stage block
// regions, as read back from the switch tables after a controller restart.
// The app is held pinned at exactly those regions (even if it was elastic
// before the crash) until Readmit restores its constraints — conservative,
// but guarantees the data plane stays consistent with the books.
func (a *Allocator) Recover(fid uint16, regions map[int]BlockRange) error {
	if fid == QuarantineFID {
		return fmt.Errorf("alloc: fid %d is reserved", fid)
	}
	if _, dup := a.apps[fid]; dup {
		return fmt.Errorf("alloc: fid %d already resident", fid)
	}
	defer a.syncTel()
	app := &App{FID: fid, regions: map[int]BlockRange{}}
	stages := make([]int, 0, len(regions))
	for s := range regions {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	for _, s := range stages {
		r := regions[s]
		if s < 0 || s >= a.cfg.NumStages || r.Lo < 0 || r.Hi > a.blocks || r.Size() < 1 {
			return fmt.Errorf("alloc: recovered region %+v at stage %d out of range", r, s)
		}
		if iv, clash := a.pinned[s].conflict(r); clash {
			return fmt.Errorf("alloc: recovered region %+v at stage %d overlaps fid %d", r, s, iv.fid)
		}
		a.pinned[s].insert(interval{BlockRange: r, fid: fid})
		app.regions[s] = r
	}
	a.apps[fid] = app
	a.recomputeElastic()
	return nil
}

// Recovered reports whether fid is resident in recovered form: pinned at
// its pre-crash regions with no constraints on file.
func (a *Allocator) Recovered(fid uint16) bool {
	app, ok := a.apps[fid]
	return ok && app.Cons == nil
}

// Readmit upgrades a recovered app to fully-admitted state using the
// constraints from the client's retransmitted allocation request. The
// mutant is recovered by matching each candidate's physical projection
// against the installed regions; if none matches (tables and request
// disagree), the recovered placement is discarded and a fresh allocation is
// attempted.
func (a *Allocator) Readmit(fid uint16, cons *Constraints) (*Result, error) {
	app, ok := a.apps[fid]
	if !ok || app.Cons != nil {
		return nil, fmt.Errorf("alloc: fid %d not in recovered state", fid)
	}
	defer a.syncTel()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	evict := func() {
		for _, s := range a.pinned {
			s.removeOwner(fid)
		}
		delete(a.apps, fid)
	}
	if len(cons.Accesses) == 0 {
		// Stateless request against a stateful recovered entry: the tables
		// lied or the client changed programs; start over.
		evict()
		a.recomputeElastic()
		return nil, fmt.Errorf("alloc: fid %d readmitted stateless against recovered regions", fid)
	}
	bounds, err := ComputeBounds(cons, a.cfg.Policy, a.cfg.NumStages, a.cfg.NumIngress, a.cfg.MaxPasses)
	if err != nil {
		evict()
		a.recomputeElastic()
		return &Result{Failed: true, Reason: "infeasible-constraints"}, nil
	}
	mutants := EnumerateMutants(bounds, a.cfg.NumStages)
	match := a.matchMutant(cons, mutants, app.regions)
	if match < 0 {
		// No mutant projects onto the installed stages: re-place from
		// scratch (the recovered regions are freed first).
		evict()
		a.recomputeElastic()
		return a.Allocate(fid, cons)
	}

	app.Cons = cons
	app.Mut = mutants[match]
	app.MutantIdx = match
	app.Elastic = cons.Elastic
	app.groups = buildGroups(cons, app.Mut, a.cfg.NumStages)
	res := &Result{MutantsTotal: len(mutants), MutantsFeasible: 1}
	if cons.Elastic {
		// Restore elasticity: drop the pinned placeholder and let the
		// shared waterfill re-place the app (its regions may move — the
		// normal reallocation protocol informs the client).
		before := a.snapshotElasticRegions()
		for _, s := range a.pinned {
			s.removeOwner(fid)
		}
		a.recomputeElastic()
		for _, g := range app.groups {
			for _, s := range g.stages {
				if app.regions[s].Size() < 1 {
					// Could not re-place elastically (quarantine or new
					// tenants squeezed it out); evict and report failure.
					evict()
					a.recomputeElastic()
					res.Failed = true
					res.Reason = "readmit-placement-failed"
					return res, nil
				}
			}
		}
		res.New = a.placementFor(app)
		res.Reallocated = a.changedPlacements(before, fid)
		return res, nil
	}
	res.New = a.placementFor(app)
	return res, nil
}

// matchMutant returns the index of the first mutant whose physical stage
// projection and alignment structure are consistent with the installed
// regions, or -1.
func (a *Allocator) matchMutant(cons *Constraints, mutants []Mutant, regions map[int]BlockRange) int {
	for idx, m := range mutants {
		groups := buildGroups(cons, m, a.cfg.NumStages)
		stagesSeen := map[int]bool{}
		ok := true
		for _, g := range groups {
			var common BlockRange
			for i, s := range g.stages {
				r, has := regions[s]
				if !has || (g.demand > 0 && r.Size() < g.demand) {
					ok = false
					break
				}
				if i == 0 {
					common = r
				} else if r != common {
					ok = false // aligned accesses must share one range
					break
				}
				stagesSeen[s] = true
			}
			if !ok {
				break
			}
		}
		if ok && len(stagesSeen) == len(regions) {
			return idx
		}
	}
	return -1
}

// Quarantine fences off the blocks of r in stage under the reserved owner
// so no future placement uses them. The blocks must not be pinned to a
// resident app (evacuate the owner first); elastic neighbors are re-placed
// around the fence and their changed placements returned.
func (a *Allocator) Quarantine(stage int, r BlockRange) ([]*Placement, error) {
	if stage < 0 || stage >= a.cfg.NumStages || r.Lo < 0 || r.Hi > a.blocks || r.Size() < 1 {
		return nil, fmt.Errorf("alloc: quarantine %+v at stage %d out of range", r, stage)
	}
	if iv, clash := a.pinned[stage].conflict(r); clash {
		if iv.fid == QuarantineFID {
			return nil, nil // already fenced
		}
		return nil, fmt.Errorf("alloc: quarantine %+v at stage %d overlaps pinned fid %d", r, stage, iv.fid)
	}
	defer a.syncTel()
	before := a.snapshotElasticRegions()
	a.pinned[stage].insert(interval{BlockRange: r, fid: QuarantineFID})
	a.recomputeElastic()
	return a.changedPlacements(before, QuarantineFID), nil
}

// QuarantinedIn reports whether the given block of a stage is quarantined.
func (a *Allocator) QuarantinedIn(stage, block int) bool {
	if stage < 0 || stage >= a.cfg.NumStages {
		return false
	}
	iv, clash := a.pinned[stage].conflict(BlockRange{Lo: block, Hi: block + 1})
	return clash && iv.fid == QuarantineFID
}

// QuarantinedBlocks returns the total quarantined blocks across all stages.
func (a *Allocator) QuarantinedBlocks() int {
	total := 0
	for _, set := range a.pinned {
		for _, iv := range set.ivs {
			if iv.fid == QuarantineFID {
				total += iv.Size()
			}
		}
	}
	return total
}

// Evacuate quarantines the given per-stage block ranges (disjoint within a
// stage — typically individual corrupted blocks, so healthy blocks between
// them stay usable) and re-places fid around them, keeping its FID and
// constraints. The result's Reallocated list covers every app whose regions
// moved (including elastic neighbors). If the app cannot be re-placed — or
// was only in recovered form, with no constraints to re-place from — it is
// evicted and the result marked failed.
func (a *Allocator) Evacuate(fid uint16, quar map[int][]BlockRange) (*Result, error) {
	app, ok := a.apps[fid]
	if !ok {
		return nil, fmt.Errorf("alloc: fid %d not resident", fid)
	}
	defer a.syncTel()
	before := a.snapshotElasticRegions()
	delete(before, fid) // the victim always gets a fresh placement
	cons := app.Cons
	for _, s := range a.pinned {
		s.removeOwner(fid)
	}
	delete(a.apps, fid)
	stages := make([]int, 0, len(quar))
	for s := range quar {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	for _, s := range stages {
		for _, r := range quar[s] {
			if _, clash := a.pinned[s].conflict(r); clash {
				continue // already fenced (or raced with another pin)
			}
			a.pinned[s].insert(interval{BlockRange: r, fid: QuarantineFID})
		}
	}
	a.recomputeElastic()
	if cons == nil {
		return &Result{Failed: true, Reason: "recovered-app-evicted"}, nil
	}
	res, err := a.Allocate(fid, cons)
	if err != nil {
		return res, err
	}
	res.Reallocated = a.changedPlacements(before, fid)
	return res, nil
}
