package alloc

import "sort"

// BlockRange is a half-open range of block indices within one stage's pool.
type BlockRange struct {
	Lo, Hi int
}

// Size returns the range length in blocks.
func (r BlockRange) Size() int { return r.Hi - r.Lo }

// overlaps reports whether two ranges intersect.
func (r BlockRange) overlaps(o BlockRange) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// interval is an owned range within a stage pool.
type interval struct {
	BlockRange
	fid   uint16
	group int
}

// intervalSet is the per-stage bookkeeping of owned ranges, kept sorted by
// Lo.
type intervalSet struct {
	ivs []interval
}

func (s *intervalSet) insert(iv interval) {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Lo >= iv.Lo })
	s.ivs = append(s.ivs, interval{})
	copy(s.ivs[i+1:], s.ivs[i:])
	s.ivs[i] = iv
}

// removeOwner deletes all intervals owned by fid and returns how many were
// removed.
func (s *intervalSet) removeOwner(fid uint16) int {
	out := s.ivs[:0]
	removed := 0
	for _, iv := range s.ivs {
		if iv.fid == fid {
			removed++
			continue
		}
		out = append(out, iv)
	}
	s.ivs = out
	return removed
}

// used returns the total blocks covered.
func (s *intervalSet) used() int {
	total := 0
	for _, iv := range s.ivs {
		total += iv.Size()
	}
	return total
}

// conflict returns the first interval overlapping r, if any. Intervals
// within a set are disjoint and sorted by Lo (so also by Hi), which admits a
// binary search: the only candidate is the first interval whose Hi exceeds
// r.Lo.
func (s *intervalSet) conflict(r BlockRange) (interval, bool) {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > r.Lo })
	if i < len(s.ivs) && s.ivs[i].Lo < r.Hi {
		return s.ivs[i], true
	}
	return interval{}, false
}

// lowestCommonOffset finds the smallest offset x such that [x, x+size) is
// free in every one of the given interval sets and x+size <= limit. The
// second result is false when no such offset exists.
func lowestCommonOffset(sets []*intervalSet, size, limit int) (int, bool) {
	if size <= 0 || size > limit {
		return 0, false
	}
	x := 0
	for x+size <= limit {
		moved := false
		for _, s := range sets {
			if iv, ok := s.conflict(BlockRange{Lo: x, Hi: x + size}); ok {
				if iv.Hi > x {
					x = iv.Hi
					moved = true
				}
			}
		}
		if !moved {
			return x, true
		}
	}
	return 0, false
}
