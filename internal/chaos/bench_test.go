package chaos

import (
	"testing"
	"time"

	"activermt/internal/netsim"
)

// benchmarkPortSend drives the netsim send hot path; prep arms (and possibly
// disarms) injectors on the link before the timer starts.
func benchmarkPortSend(b *testing.B, prep func(sys *System, link *netsim.Port)) {
	eng := netsim.NewEngine()
	s1, s2 := &sink{}, &sink{}
	pa, _ := netsim.Connect(eng, s1, 0, s2, 0, time.Microsecond, 0)
	if prep != nil {
		prep(&System{Eng: eng}, pa)
	}
	frame := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.Send(frame)
		if i&1023 == 1023 { // drain periodically so the event heap stays small
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkPortSend contrasts the pristine send path against one where link
// injectors were applied and then reverted. The two should be
// indistinguishable: all fault state defaults to off and a reverted injector
// leaves no residue on the hot path.
func BenchmarkPortSend(b *testing.B) {
	b.Run("pristine", func(b *testing.B) {
		benchmarkPortSend(b, nil)
	})
	b.Run("injectors-reverted", func(b *testing.B) {
		benchmarkPortSend(b, func(sys *System, link *netsim.Port) {
			armed := []Injector{
				LinkLoss{Link: link, Rate: 0.5, Seed: 1},
				LinkDelay{Link: link, Extra: time.Millisecond, Jitter: time.Millisecond, Seed: 2},
				PortDown{Port: link},
			}
			for _, inj := range armed {
				inj.Apply(sys)
			}
			for i := len(armed) - 1; i >= 0; i-- {
				armed[i].Revert(sys)
			}
		})
	})
	b.Run("loss-armed", func(b *testing.B) { // for contrast: the non-zero cost
		benchmarkPortSend(b, func(sys *System, link *netsim.Port) {
			LinkLoss{Link: link, Rate: 0.5, Seed: 1}.Apply(sys)
		})
	})
}
