package chaos

import (
	"fmt"
	"time"

	"activermt/internal/netsim"
	"activermt/internal/policy"
	"activermt/internal/switchd"
)

// The scenario library: named, parameterized fault schedules covering the
// failure modes the allocation protocol must survive. Each constructor
// returns a Scenario ready to Install; the caller supplies the target ports
// (faults on links are topology decisions, not system decisions).

// Names lists the library scenarios accepted by Build (and activesim
// -chaos).
func Names() []string {
	return []string{"flaky-link", "flapping-port", "controller-outage", "corrupted-memory",
		"link-outage", "link-flap", "partition"}
}

// Build constructs a library scenario by name. links are the client-side
// duplex links faults apply to (any end of each link); scenarios that only
// touch the controller or switch memory ignore them.
func Build(name string, links []*netsim.Port, seed int64) (*Scenario, error) {
	// The fault schedule is re-homed in internal/policy: the library keeps
	// the shapes, the policy layer keeps the historical timings.
	t := policy.DefaultChaosTimings()
	switch name {
	case "flaky-link":
		return FlakyLink(links, seed), nil
	case "flapping-port":
		if len(links) == 0 {
			return nil, fmt.Errorf("chaos: %s needs at least one link", name)
		}
		return FlappingPort(links[0], t.FlapPeriod, 5, seed), nil
	case "controller-outage":
		return ControllerOutage(t.OutageAt, t.OutageFor, seed), nil
	case "corrupted-memory":
		return CorruptedMemory(0, 24, t.CorruptAt, t.SweepAt, seed), nil
	case "link-outage":
		if len(links) == 0 {
			return nil, fmt.Errorf("chaos: %s needs at least one link", name)
		}
		return LinkOutageScenario(links[0], t.LinkOutageAt, t.LinkOutageFor, seed), nil
	case "link-flap":
		if len(links) == 0 {
			return nil, fmt.Errorf("chaos: %s needs at least one link", name)
		}
		return LinkFlapScenario(links[0], t.LinkFlapPeriod, 6, seed), nil
	case "partition":
		if len(links) == 0 {
			return nil, fmt.Errorf("chaos: %s needs at least one link", name)
		}
		return PartitionScenario(links, t.PartitionAt, t.PartitionFor, seed), nil
	default:
		return nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
	}
}

// FlakyLink alternates bursts of heavy loss with quiet periods on every
// given link: loss rates are drawn per burst from the scenario PRNG, so the
// protocol sees both moderate and severe loss. Exercises request/response
// retransmission and the controller's snapshot-window escalation.
func FlakyLink(links []*netsim.Port, seed int64) *Scenario {
	s := NewScenario("flaky-link", seed)
	rng := s.Rand("burst-rates")
	t := policy.DefaultChaosTimings()
	const bursts = 6
	for i := 0; i < bursts; i++ {
		rate := 0.2 + 0.4*rng.Float64()
		at := time.Duration(i) * t.FlakyBurstEvery
		for j, l := range links {
			inj := LinkLoss{Link: l, Rate: rate, Seed: seed + int64(i*31+j)}
			s.Apply(at, inj)
			s.Revert(at+t.FlakyBurstLen, inj)
		}
	}
	return s
}

// FlappingPort takes one port down and up repeatedly (half the period down,
// half up). In-flight frames die on every down transition; the client rides
// through on retries and resumes on re-up.
func FlappingPort(p *netsim.Port, period time.Duration, flaps int, seed int64) *Scenario {
	s := NewScenario("flapping-port", seed)
	inj := PortDown{Port: p}
	for k := 0; k < flaps; k++ {
		at := time.Duration(k) * period
		s.Apply(at, inj)
		s.Revert(at+period/2, inj)
	}
	return s
}

// ControllerOutage crashes the control plane at crashAt and restarts it
// downFor later. Everything in controller memory — admission queue, client
// directory, allocation books — is lost; the restarted controller rebuilds
// from the switch tables and re-admits clients idempotently as their
// retransmitted requests arrive. Timed against an admission that forces
// reallocations, this is the paper's worst case: a crash in the middle of
// the deactivate/snapshot/update window.
func ControllerOutage(crashAt, downFor time.Duration, seed int64) *Scenario {
	s := NewScenario("controller-outage", seed)
	inj := ControllerCrash{}
	s.Apply(crashAt, inj)
	s.Revert(crashAt+downFor, inj)
	return s
}

// SwitchOutage crashes one specific device's controller at crashAt and
// restarts it downFor later. Unlike ControllerOutage it captures its target
// explicitly, so a multi-switch fabric (internal/fabric) can aim the
// failure at any of its nodes; recovery rides the same Crash/Restart path
// (allocation books rebuilt from the surviving switch tables via
// alloc.Recover, clients re-admitted idempotently at their old placement
// and epoch) on that one device while the rest of the fabric keeps
// forwarding.
func SwitchOutage(name string, ctrl *switchd.Controller, crashAt, downFor time.Duration, seed int64) *Scenario {
	s := NewScenario("switch-outage:"+name, seed)
	s.At(crashAt, "crash:"+name, func(*System) { ctrl.Crash() })
	s.At(crashAt+downFor, "restart:"+name, func(*System) { ctrl.Restart() })
	return s
}

// LinkOutageScenario kills one duplex link outright at outageAt and restores
// it downFor later: the clean-cut fabric failure a health monitor must
// detect (probes stop coming back), route around, and recover from.
func LinkOutageScenario(link *netsim.Port, outageAt, downFor time.Duration, seed int64) *Scenario {
	s := NewScenario("link-outage", seed)
	inj := LinkOutage{Link: link}
	s.Apply(outageAt, inj)
	s.Revert(outageAt+downFor, inj)
	return s
}

// LinkFlapScenario oscillates one duplex link (period/2 down, period/2 up)
// for the given number of flaps starting at 100 ms, then restores it. The
// flapping link is the adversarial case for failure detection: each down
// kills in-flight frames, each up tempts the monitor to trust the link
// again.
func LinkFlapScenario(link *netsim.Port, period time.Duration, flaps int, seed int64) *Scenario {
	s := NewScenario("link-flap", seed)
	inj := &LinkFlap{Link: link, Period: period, Flaps: flaps}
	s.Apply(100*time.Millisecond, inj)
	s.Revert(100*time.Millisecond+time.Duration(flaps+1)*period, inj)
	return s
}

// PartitionScenario downs every given port at partitionAt and restores them
// all downFor later: the clean isolation of one device (or one failure
// domain) from the rest of the fabric — e.g. every spine-side port of one
// spine (fabric.SpinePorts), the "spine kill". A one-sided down kills both
// directions: sends from the port are dropped at the port, sends toward it
// at delivery.
func PartitionScenario(ports []*netsim.Port, partitionAt, downFor time.Duration, seed int64) *Scenario {
	s := NewScenario("partition", seed)
	inj := Partition{Ports: ports}
	s.Apply(partitionAt, inj)
	s.Revert(partitionAt+downFor, inj)
	return s
}

// AdversarialTenant drives a full attack arc from one adversary endpoint
// against a victim tenant: a spray of malformed and truncated capsules, an
// epoch-guessing forgery burst under the victim's FID, an over-budget
// recirculation bomb, and finally an authenticated out-of-bounds write sweep
// across the victim's granted regions. The unauthenticated phases must land
// on the ingress-port ledger (the victim stays Healthy); the authenticated
// phases must walk the adversary's own ledger up the escalation ladder to
// quarantine and eviction. The adversary must be Armed with its granted FID
// and epoch before the authenticated phases fire.
func AdversarialTenant(adv *Adversary, victimFID uint16, seed int64) *Scenario {
	s := NewScenario("adversarial-tenant", seed)
	// Phase 1: protocol garbage, attributed to the port.
	s.Apply(20*time.Millisecond, AdversaryBurst{Adv: adv, Kind: "malformed", N: 6, Gap: 2 * time.Millisecond, Seed: seed + 1})
	s.Apply(40*time.Millisecond, AdversaryBurst{Adv: adv, Kind: "truncated", N: 6, Gap: 2 * time.Millisecond, Seed: seed + 2})
	// Phase 2: identity forgery against the victim.
	s.Apply(60*time.Millisecond, AdversaryBurst{Adv: adv, Kind: "forged", N: 10, Gap: 2 * time.Millisecond, VictimFID: victimFID, Seed: seed + 3})
	// Phase 3: authenticated resource abuse.
	s.Apply(90*time.Millisecond, AdversaryBurst{Adv: adv, Kind: "recirc", N: 6, Gap: 2 * time.Millisecond, Seed: seed + 4})
	// Phase 4: authenticated memory scan of the victim's regions. Long
	// enough to walk the default ladder end to end: the faults quarantine
	// the attacker, and its continued traffic escalates to eviction.
	s.Apply(120*time.Millisecond, AdversaryBurst{Adv: adv, Kind: "oob", N: 120, Gap: 1 * time.Millisecond, VictimFID: victimFID, Seed: seed + 5})
	return s
}

// SynFloodAttack schedules a bare-SYN flood: every source fires synsEach
// SYN capsules through the application-provided send hook, interleaved by
// the scenario PRNG and spaced gap apart starting at startAt. The hook keeps
// the library decoupled from any one detector implementation — the secapps
// SYN-flood driver's SynVia is the intended target, so the flood rides the
// victim application's own capsule path and its half-open counters climb
// exactly as a real attack would drive them (no ACKs ever follow).
func SynFloodAttack(send func(src uint32), sources []uint32, synsEach int, startAt, gap time.Duration, seed int64) *Scenario {
	s := NewScenario("syn-flood", seed)
	order := make([]uint32, 0, len(sources)*synsEach)
	for _, src := range sources {
		for i := 0; i < synsEach; i++ {
			order = append(order, src)
		}
	}
	rng := s.Rand("interleave")
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i, src := range order {
		src := src
		s.At(startAt+time.Duration(i)*gap, fmt.Sprintf("syn:%#x", src), func(*System) { send(src) })
	}
	return s
}

// CorruptedMemory flips bits in one stage's register SRAM at corruptAt —
// preferentially inside installed application regions — and runs the
// controller's sweep-and-repair pass at sweepAt. The sweep scrubs the
// damaged words, quarantines the affected blocks, and re-places the owning
// applications around the fence via the normal reallocation protocol.
func CorruptedMemory(stage, bits int, corruptAt, sweepAt time.Duration, seed int64) *Scenario {
	s := NewScenario("corrupted-memory", seed)
	s.Apply(corruptAt, RegisterCorruption{Stage: stage, Bits: bits, Seed: seed, PreferOwned: true})
	s.At(sweepAt, "sweep-and-repair", func(sys *System) { sys.Ctrl.SweepAndRepair() })
	return s
}
