// Package chaos is a deterministic fault-injection and scenario-orchestration
// layer over the netsim virtual-time simulator. It provides composable
// injectors (link loss/delay/jitter, partitions, port flaps, controller
// stall/crash, digest drops, register-memory corruption) and a Scenario
// schedule that arms them at virtual-time offsets. Everything is driven by
// seeded PRNGs and the single-threaded event engine, so a scenario replayed
// with the same seed produces the same event trace, the same packet drops,
// and the same final state — failures found under chaos are reproducible by
// construction.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"activermt/internal/guard"
	"activermt/internal/netsim"
	"activermt/internal/runtime"
	"activermt/internal/switchd"
	"activermt/internal/telemetry"
)

// System bundles the simulated components a scenario acts on. The testbed
// package exposes one via (*Testbed).System().
type System struct {
	Eng    *netsim.Engine
	Switch *switchd.Switch
	Ctrl   *switchd.Controller
	RT     *runtime.Runtime
	Guard  *guard.Guard // nil when the capsule guard is disabled
	Tel    *Telemetry   // nil when telemetry is disabled
}

// Telemetry counts injected fault events by name, so a scrape can correlate
// data-plane metric movement with the chaos schedule that caused it.
type Telemetry struct {
	Events *telemetry.CounterVec
}

// NewTelemetry registers the chaos event counter.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		Events: reg.NewCounterVec("activermt_chaos_events_total",
			"Chaos scenario events fired, by event name.", "event"),
	}
}

// Injector is one composable fault: Apply arms it, Revert disarms it.
// Injectors are value types; a scenario schedules Apply/Revert pairs at
// virtual-time offsets. Reverting a one-shot fault (e.g. memory corruption)
// is a no-op — the damage stays until repaired in-protocol.
type Injector interface {
	Name() string
	Apply(sys *System)
	Revert(sys *System)
}

// TraceEntry records one scenario event firing, in virtual time.
type TraceEntry struct {
	At   time.Duration
	Name string
}

func (e TraceEntry) String() string { return fmt.Sprintf("%s@%v", e.Name, e.At) }

type event struct {
	off    time.Duration
	name   string
	action func(sys *System)
}

// Scenario is a schedule of fault events at virtual-time offsets. Build it
// with At/Apply/Revert, then Install it on a system; offsets are relative to
// install time. The fired events accumulate in Trace, which is the scenario's
// determinism witness: same seed, same topology, same trace.
type Scenario struct {
	Name string
	Seed int64

	events    []event
	trace     []TraceEntry
	installed bool
}

// NewScenario starts an empty scenario.
func NewScenario(name string, seed int64) *Scenario {
	return &Scenario{Name: name, Seed: seed}
}

// At schedules an arbitrary named action at the given offset.
func (s *Scenario) At(off time.Duration, name string, action func(sys *System)) *Scenario {
	s.events = append(s.events, event{off: off, name: name, action: action})
	return s
}

// Apply schedules arming an injector.
func (s *Scenario) Apply(off time.Duration, inj Injector) *Scenario {
	return s.At(off, "apply:"+inj.Name(), inj.Apply)
}

// Revert schedules disarming an injector.
func (s *Scenario) Revert(off time.Duration, inj Injector) *Scenario {
	return s.At(off, "revert:"+inj.Name(), inj.Revert)
}

// Rand derives a deterministic PRNG for a named stream of this scenario:
// independent streams (loss rates, corruption addresses, flap timing) stay
// independent of each other but fully determined by (Seed, stream).
func (s *Scenario) Rand(stream string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(stream))
	return rand.New(rand.NewSource(s.Seed ^ int64(h.Sum64())))
}

// Install schedules every event on the system's engine, offsets measured
// from now. A scenario installs once.
func (s *Scenario) Install(sys *System) error {
	if s.installed {
		return fmt.Errorf("chaos: scenario %q already installed", s.Name)
	}
	if sys == nil || sys.Eng == nil {
		return fmt.Errorf("chaos: scenario %q needs a system with an engine", s.Name)
	}
	s.installed = true
	for _, ev := range s.events {
		ev := ev
		sys.Eng.Schedule(ev.off, func() {
			s.trace = append(s.trace, TraceEntry{At: sys.Eng.Now(), Name: ev.name})
			if sys.Tel != nil {
				sys.Tel.Events.With(ev.name).Inc()
			}
			ev.action(sys)
		})
	}
	return nil
}

// Trace returns the events fired so far, in virtual-time order.
func (s *Scenario) Trace() []TraceEntry { return s.trace }

// TraceString renders the trace as one line per event (for golden
// comparisons in tests and -chaos runs).
func TraceString(trace []TraceEntry) string {
	out := ""
	for _, e := range trace {
		out += e.String() + "\n"
	}
	return out
}
