package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"activermt/internal/netsim"
	"activermt/internal/packet"
)

// seedSkew decorrelates the two directions of a duplex link without needing
// a second user-supplied seed.
const seedSkew = int64(0x5e3779b97f4a7c15)

// LinkLoss drops a fraction of frames in both directions of the duplex link
// that Link is one end of.
type LinkLoss struct {
	Link *netsim.Port
	Rate float64
	Seed int64
}

// Name implements Injector.
func (l LinkLoss) Name() string { return fmt.Sprintf("loss(%.0f%%)", l.Rate*100) }

// Apply implements Injector.
func (l LinkLoss) Apply(*System) {
	l.Link.SetLoss(l.Rate, l.Seed)
	l.Link.Peer().SetLoss(l.Rate, l.Seed^seedSkew)
}

// Revert implements Injector.
func (l LinkLoss) Revert(*System) {
	l.Link.SetLoss(0, 0)
	l.Link.Peer().SetLoss(0, 0)
}

// LinkDelay adds fixed extra latency plus uniform jitter from [0, Jitter) to
// both directions of a link. Jitter wider than the inter-frame gap reorders
// deliveries.
type LinkDelay struct {
	Link          *netsim.Port
	Extra, Jitter time.Duration
	Seed          int64
}

// Name implements Injector.
func (l LinkDelay) Name() string { return fmt.Sprintf("delay(%v+%v)", l.Extra, l.Jitter) }

// Apply implements Injector.
func (l LinkDelay) Apply(*System) {
	l.Link.SetExtraDelay(l.Extra, l.Jitter, l.Seed)
	l.Link.Peer().SetExtraDelay(l.Extra, l.Jitter, l.Seed^seedSkew)
}

// Revert implements Injector.
func (l LinkDelay) Revert(*System) {
	l.Link.SetExtraDelay(0, 0, 0)
	l.Link.Peer().SetExtraDelay(0, 0, 0)
}

// PortDown takes one port administratively down, killing both directions of
// its link (its sends are dropped at the port; frames in flight toward it
// are dropped on delivery). Revert brings it back up.
type PortDown struct {
	Port *netsim.Port
}

// Name implements Injector.
func (PortDown) Name() string { return "port-down" }

// Apply implements Injector.
func (p PortDown) Apply(*System) { p.Port.SetDown(true) }

// Revert implements Injector.
func (p PortDown) Revert(*System) { p.Port.SetDown(false) }

// Partition isolates a set of ports (e.g. every port on one side of a cut).
type Partition struct {
	Ports []*netsim.Port
}

// Name implements Injector.
func (p Partition) Name() string { return fmt.Sprintf("partition(%d)", len(p.Ports)) }

// Apply implements Injector.
func (p Partition) Apply(*System) {
	for _, port := range p.Ports {
		port.SetDown(true)
	}
}

// Revert implements Injector.
func (p Partition) Revert(*System) {
	for _, port := range p.Ports {
		port.SetDown(false)
	}
}

// ControllerStall wedges the controller CPU: digests keep queueing but
// nothing is processed until Revert.
type ControllerStall struct{}

// Name implements Injector.
func (ControllerStall) Name() string { return "controller-stall" }

// Apply implements Injector.
func (ControllerStall) Apply(sys *System) { sys.Ctrl.Stall() }

// Revert implements Injector.
func (ControllerStall) Revert(sys *System) { sys.Ctrl.Resume() }

// ControllerCrash kills the control plane (losing its queue, client
// directory, and allocation books; the data plane keeps running). Revert
// restarts it, rebuilding allocation state from the switch tables.
type ControllerCrash struct{}

// Name implements Injector.
func (ControllerCrash) Name() string { return "controller-crash" }

// Apply implements Injector.
func (ControllerCrash) Apply(sys *System) { sys.Ctrl.Crash() }

// Revert implements Injector.
func (ControllerCrash) Revert(sys *System) { sys.Ctrl.Restart() }

// DigestDrop discards a fraction of data-plane-to-controller digests (the
// switch CPU path is itself lossy under load).
type DigestDrop struct {
	Rate float64
	Seed int64
}

// Name implements Injector.
func (d DigestDrop) Name() string { return fmt.Sprintf("digest-drop(%.0f%%)", d.Rate*100) }

// Apply implements Injector.
func (d DigestDrop) Apply(sys *System) {
	rng := rand.New(rand.NewSource(d.Seed))
	rate := d.Rate
	sys.Ctrl.DigestFilter = func(f *packet.Frame) bool { return rng.Float64() < rate }
}

// Revert implements Injector.
func (DigestDrop) Revert(sys *System) { sys.Ctrl.DigestFilter = nil }

// RegisterCorruption flips Bits random bits in one stage's register SRAM
// (soft errors). The parity kept by the write path is left stale, so the
// damage is invisible to the data plane until a controller sweep
// (SweepAndRepair) finds the mismatches. When PreferOwned is set and the
// stage has installed regions, corrupted addresses are drawn from them, so
// the fault lands on live application state.
type RegisterCorruption struct {
	Stage       int
	Bits        int
	Seed        int64
	PreferOwned bool
}

// Name implements Injector.
func (r RegisterCorruption) Name() string {
	return fmt.Sprintf("corrupt(stage%d,%db)", r.Stage, r.Bits)
}

// Apply implements Injector.
func (r RegisterCorruption) Apply(sys *System) {
	rng := rand.New(rand.NewSource(r.Seed))
	regs := sys.RT.Device().Stage(r.Stage).Registers
	var owned [][2]uint32 // [lo, hi) candidate ranges
	if r.PreferOwned {
		for _, fid := range sys.RT.AdmittedFIDs() {
			if reg, ok := sys.RT.InstalledRegions(fid)[r.Stage]; ok && reg.Hi > reg.Lo {
				owned = append(owned, [2]uint32{reg.Lo, reg.Hi})
			}
		}
	}
	for i := 0; i < r.Bits; i++ {
		var addr uint32
		if len(owned) > 0 {
			span := owned[rng.Intn(len(owned))]
			addr = span[0] + uint32(rng.Int63n(int64(span[1]-span[0])))
		} else {
			addr = uint32(rng.Int63n(int64(regs.Len())))
		}
		_ = regs.CorruptBit(addr, uint(rng.Intn(32)))
	}
}

// Revert implements Injector: corruption is one-shot, repair happens
// in-protocol (sweep, quarantine, reallocate).
func (RegisterCorruption) Revert(*System) {}
