package chaos

import (
	"fmt"
	"time"

	"activermt/internal/netsim"
)

// LinkOutage kills one duplex link outright: both ends go administratively
// down, so sends from either side are dropped at the port and frames already
// in flight die at delivery. Revert restores both directions. This is the
// fabric failure a health monitor must detect and route around — unlike
// LinkLoss, nothing gets through and nothing comes back.
type LinkOutage struct {
	Link *netsim.Port
}

// Name implements Injector.
func (LinkOutage) Name() string { return "link-outage" }

// Apply implements Injector.
func (l LinkOutage) Apply(*System) {
	l.Link.SetDown(true)
	l.Link.Peer().SetDown(true)
}

// Revert implements Injector.
func (l LinkOutage) Revert(*System) {
	l.Link.SetDown(false)
	l.Link.Peer().SetDown(false)
}

// LinkFlap oscillates a duplex link: Period/2 down, Period/2 up, rearming
// itself on the engine until Revert (or until Flaps transitions, when set).
// Every down transition kills the frames on the wire, so a flapping fabric
// link exercises both the loss path and the health monitor's dead/alive
// hysteresis — the pathological case where a link is neither up nor down
// long enough to trust.
type LinkFlap struct {
	Link   *netsim.Port
	Period time.Duration
	Flaps  int // 0 = flap until Revert

	state *flapState
}

type flapState struct {
	stopped bool
	fired   int
}

// Name implements Injector.
func (l *LinkFlap) Name() string { return fmt.Sprintf("link-flap(%v)", l.Period) }

// Apply implements Injector: takes the link down now and schedules the
// up/down oscillation on the system engine.
func (l *LinkFlap) Apply(sys *System) {
	period := l.Period
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	st := &flapState{}
	l.state = st
	link, peer := l.Link, l.Link.Peer()
	setDown := func(down bool) {
		link.SetDown(down)
		peer.SetDown(down)
	}
	var cycle func(down bool)
	cycle = func(down bool) {
		if st.stopped {
			return
		}
		setDown(down)
		if down {
			st.fired++
			if l.Flaps > 0 && st.fired >= l.Flaps {
				// Last programmed flap: come back up half a period later and
				// stop oscillating.
				sys.Eng.Schedule(period/2, func() {
					if !st.stopped {
						setDown(false)
					}
				})
				return
			}
		}
		sys.Eng.Schedule(period/2, func() { cycle(!down) })
	}
	cycle(true)
}

// Revert implements Injector: stops the oscillation and restores the link.
func (l *LinkFlap) Revert(*System) {
	if l.state != nil {
		l.state.stopped = true
	}
	l.Link.SetDown(false)
	l.Link.Peer().SetDown(false)
}
