package chaos

import (
	"testing"
	"time"

	"activermt/internal/netsim"
)

type sink struct{ got int }

func (s *sink) Receive(frame []byte, p *netsim.Port) { s.got++ }

func bareLink(t *testing.T) (*netsim.Engine, *netsim.Port, *sink) {
	t.Helper()
	eng := netsim.NewEngine()
	a, b := &sink{}, &sink{}
	pa, _ := netsim.Connect(eng, a, 0, b, 0, time.Microsecond, 0)
	_ = a
	return eng, pa, b
}

func TestLibraryBuild(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := &sink{}, &sink{}
	pa, _ := netsim.Connect(eng, a, 0, b, 0, 0, 0)
	for _, name := range Names() {
		sc, err := Build(name, []*netsim.Port{pa}, 1)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("Build(%q).Name = %q", name, sc.Name)
		}
		if len(sc.events) == 0 {
			t.Errorf("scenario %q has no events", name)
		}
	}
	if _, err := Build("nope", nil, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Build("flapping-port", nil, 1); err == nil {
		t.Error("flapping-port without links accepted")
	}
}

func TestScenarioInstallOnce(t *testing.T) {
	eng := netsim.NewEngine()
	sc := NewScenario("x", 1).At(0, "noop", func(*System) {})
	if err := sc.Install(nil); err == nil {
		t.Error("install on nil system accepted")
	}
	if err := sc.Install(&System{Eng: eng}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Install(&System{Eng: eng}); err == nil {
		t.Error("double install accepted")
	}
}

func TestScenarioRandStreams(t *testing.T) {
	a := NewScenario("x", 42).Rand("loss")
	b := NewScenario("x", 42).Rand("loss")
	c := NewScenario("x", 42).Rand("delay")
	same, diff := true, false
	for i := 0; i < 16; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va != vb {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("same (seed, stream) produced different sequences")
	}
	if !diff {
		t.Error("different streams produced the same sequence")
	}
}

func TestScenarioTraceOrder(t *testing.T) {
	eng := netsim.NewEngine()
	sc := NewScenario("x", 1)
	sc.At(20*time.Millisecond, "late", func(*System) {})
	sc.At(10*time.Millisecond, "early", func(*System) {})
	if err := sc.Install(&System{Eng: eng}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	tr := sc.Trace()
	if len(tr) != 2 || tr[0].Name != "early" || tr[1].Name != "late" {
		t.Fatalf("trace = %v", tr)
	}
	if TraceString(tr) != "early@10ms\nlate@20ms\n" {
		t.Errorf("TraceString = %q", TraceString(tr))
	}
}

func TestLinkLossInjectorBothDirectionsAndRevert(t *testing.T) {
	eng, pa, b := bareLink(t)
	sys := &System{Eng: eng}
	inj := LinkLoss{Link: pa, Rate: 1.0, Seed: 5}
	inj.Apply(sys)
	for i := 0; i < 10; i++ {
		pa.Send([]byte{1})
	}
	eng.Run()
	if b.got != 0 {
		t.Fatalf("delivered %d frames under 100%% loss", b.got)
	}
	if pa.Peer().Down() || pa.Down() {
		t.Error("loss injector marked port down")
	}
	inj.Revert(sys)
	for i := 0; i < 10; i++ {
		pa.Send([]byte{1})
	}
	eng.Run()
	if b.got != 10 {
		t.Fatalf("delivered %d/10 after revert", b.got)
	}
}

func TestPartitionInjector(t *testing.T) {
	eng, pa, b := bareLink(t)
	sys := &System{Eng: eng}
	inj := Partition{Ports: []*netsim.Port{pa}}
	inj.Apply(sys)
	pa.Send([]byte{1})
	pa.Peer().Send([]byte{2}) // toward the downed port: dropped on delivery
	eng.Run()
	if b.got != 0 {
		t.Fatalf("frames crossed a partition: %d", b.got)
	}
	inj.Revert(sys)
	pa.Send([]byte{1})
	eng.Run()
	if b.got != 1 {
		t.Fatalf("delivery after heal: %d", b.got)
	}
}

func TestLinkDelayInjectorRevertRestoresLatency(t *testing.T) {
	eng, pa, b := bareLink(t)
	sys := &System{Eng: eng}
	inj := LinkDelay{Link: pa, Extra: 5 * time.Millisecond, Jitter: 0, Seed: 1}
	inj.Apply(sys)
	pa.Send([]byte{1})
	eng.RunUntil(time.Millisecond)
	if b.got != 0 {
		t.Fatal("frame arrived before the injected delay")
	}
	eng.RunUntil(10 * time.Millisecond)
	if b.got != 1 {
		t.Fatal("frame lost under delay injection")
	}
	inj.Revert(sys)
	pa.Send([]byte{1})
	eng.RunUntil(eng.Now() + 2*time.Microsecond)
	if b.got != 2 {
		t.Fatal("revert did not restore base latency")
	}
}
