package chaos_test

// Full-stack chaos tests: scenarios from the library run against the
// assembled testbed (switch, controller, shim clients, apps). These are the
// acceptance tests for the robustness work: a controller crash-restart in
// the middle of a reallocation leaves every previously admitted app
// operational, and corrupted register memory ends with the damaged blocks
// quarantined and the owning app re-placed.

import (
	"testing"
	"time"

	"activermt/internal/apps"
	"activermt/internal/chaos"
	"activermt/internal/client"
	"activermt/internal/netsim"
	"activermt/internal/testbed"
)

func newBed(t *testing.T) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// addCache spins up one cache client+app, configured for fault tolerance
// (retries with backoff, realloc-window escape).
func addCache(t *testing.T, tb *testbed.Testbed, fid uint16, srv *apps.KVServer) (*apps.Cache, *client.Client) {
	t.Helper()
	_, _, selfIP := tb.NewHostID()
	c := apps.NewCache(srv.MAC(), selfIP, testbed.IPFor(999))
	cl := tb.AddClient(fid, apps.CacheService(c))
	c.Bind(cl)
	cl.RetryAfter = 50 * time.Millisecond
	cl.ReallocTimeout = 250 * time.Millisecond
	return c, cl
}

func addServer(t *testing.T, tb *testbed.Testbed) *apps.KVServer {
	t.Helper()
	srv := apps.NewKVServer(tb.Eng, testbed.MACFor(200), testbed.IPFor(999))
	_, sp := tb.Attach(srv, srv.MAC())
	srv.Attach(sp)
	return srv
}

// waitAll steps the simulation until every client is operational (or the
// deadline passes, which fails the test).
func waitAll(t *testing.T, tb *testbed.Testbed, deadline time.Duration, cls ...*client.Client) {
	t.Helper()
	limit := tb.Eng.Now() + deadline
	for tb.Eng.Now() < limit {
		ok := true
		for _, cl := range cls {
			if cl.State() != client.Operational {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		tb.RunFor(10 * time.Millisecond)
	}
	for _, cl := range cls {
		if cl.State() != client.Operational {
			t.Errorf("fid %d stuck in %v", cl.FID(), cl.State())
		}
	}
	t.FailNow()
}

func TestControllerCrashRestartDuringReallocation(t *testing.T) {
	tb := newBed(t)
	srv := addServer(t, tb)

	// Three caches fill the cache-reachable stages; the fourth arrival
	// forces a reallocation (same pressure as the Figure 9b experiment).
	clients := make([]*client.Client, 0, 4)
	for fid := uint16(1); fid <= 3; fid++ {
		_, cl := addCache(t, tb, fid, srv)
		clients = append(clients, cl)
		if err := cl.RequestAllocation(); err != nil {
			t.Fatal(err)
		}
		waitAll(t, tb, 10*time.Second, cl)
	}
	_, cl4 := addCache(t, tb, 4, srv)
	clients = append(clients, cl4)
	if err := cl4.RequestAllocation(); err != nil {
		t.Fatal(err)
	}

	// Crash the controller while the fourth admission is mid-protocol
	// (compute / snapshot window / table updates all land within the first
	// tens of milliseconds) and restart it 300ms later.
	sc := chaos.ControllerOutage(15*time.Millisecond, 300*time.Millisecond, 42)
	if err := sc.Install(tb.System()); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(10 * time.Second)

	if tb.Ctrl.Crashes != 1 || tb.Ctrl.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d", tb.Ctrl.Crashes, tb.Ctrl.Restarts)
	}
	// Acceptance: every app operational, nobody stuck, books rebuilt.
	for _, cl := range clients {
		if cl.State() != client.Operational {
			t.Errorf("fid %d stuck in %v after restart", cl.FID(), cl.State())
		}
	}
	if n := tb.Ctrl.Allocator().NumApps(); n != 4 {
		t.Errorf("allocator rebuilt with %d apps, want 4", n)
	}
	// Client placements and switch tables agree for every app.
	for _, cl := range clients {
		pl := cl.Placement()
		if pl == nil {
			t.Fatalf("fid %d has no placement", cl.FID())
		}
		for _, ap := range pl.Accesses {
			reg, ok := tb.RT.RegionFor(cl.FID(), ap.Logical%20)
			if !ok || reg.Lo != ap.Range.Lo || reg.Hi != ap.Range.Hi {
				t.Errorf("fid %d: table/placement divergence at stage %d", cl.FID(), ap.Logical%20)
			}
		}
	}
	if len(sc.Trace()) != 2 {
		t.Errorf("trace = %v", sc.Trace())
	}
}

func TestCorruptedMemoryQuarantineAndRealloc(t *testing.T) {
	tb := newBed(t)
	ms := apps.NewMemSync()
	cl := tb.AddClient(1, apps.MemSyncService(0)) // elastic single-region app
	ms.Bind(cl)
	cl.RetryAfter = 50 * time.Millisecond
	cl.ReallocTimeout = 250 * time.Millisecond
	if err := cl.RequestAllocation(); err != nil {
		t.Fatal(err)
	}
	waitAll(t, tb, 5*time.Second, cl)
	stage := cl.Placement().Accesses[0].Logical % 20

	// Cache traffic against the region, so corruption lands on live state.
	wrote := 0
	for i := uint32(0); i < 16; i++ {
		ms.Write(i, 0xBEEF+i, func(uint32) { wrote++ })
	}
	tb.RunFor(100 * time.Millisecond)
	if wrote != 16 {
		t.Fatalf("writes acked: %d/16", wrote)
	}

	// Flip bits inside installed regions of the app's stage, then run the
	// controller sweep.
	sc := chaos.CorruptedMemory(stage, 24, 10*time.Millisecond, 50*time.Millisecond, 7)
	if err := sc.Install(tb.System()); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(5 * time.Second)

	al := tb.Ctrl.Allocator()
	if al.QuarantinedBlocks() == 0 {
		t.Fatal("no blocks quarantined after sweep")
	}
	if cl.State() != client.Operational {
		t.Fatalf("app stuck in %v after repair", cl.State())
	}
	if cl.Reallocations == 0 {
		t.Error("owner was not re-placed")
	}
	// The new placement avoids every quarantined block.
	bw := al.Config().BlockWords
	for _, ap := range cl.Placement().Accesses {
		s := ap.Logical % 20
		for b := int(ap.Range.Lo) / bw; b < (int(ap.Range.Hi)+bw-1)/bw; b++ {
			if al.QuarantinedIn(s, b) {
				t.Errorf("stage %d block %d: placement overlaps quarantine", s, b)
			}
		}
	}
	// The sweep scrubbed everything it found: a fresh scan is clean.
	if left := tb.RT.SweepCorruption(); len(left) != 0 {
		t.Errorf("%d corrupted words left after repair", len(left))
	}
	// The app still works end to end after re-placement.
	done := 0
	for i := uint32(0); i < 8; i++ {
		ms.Write(i, 0xD00D+i, func(uint32) { done++ })
	}
	tb.RunFor(100 * time.Millisecond)
	if done != 8 {
		t.Errorf("post-repair writes acked: %d/8", done)
	}
}

func TestControllerStallQueuesThenDrains(t *testing.T) {
	tb := newBed(t)
	srv := addServer(t, tb)
	_, cl := addCache(t, tb, 1, srv)

	sc := chaos.NewScenario("stall", 1)
	sc.Apply(0, chaos.ControllerStall{})
	sc.Revert(150*time.Millisecond, chaos.ControllerStall{})
	if err := sc.Install(tb.System()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RequestAllocation(); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(100 * time.Millisecond)
	if cl.State() == client.Operational {
		t.Fatal("admitted while controller stalled")
	}
	if !tb.Ctrl.Stalled() {
		t.Fatal("controller not stalled")
	}
	waitAll(t, tb, 5*time.Second, cl)
}

func TestDigestDropForcesClientRetries(t *testing.T) {
	tb := newBed(t)
	srv := addServer(t, tb)
	_, cl := addCache(t, tb, 1, srv)

	sc := chaos.NewScenario("digest-drop", 3)
	inj := chaos.DigestDrop{Rate: 1.0, Seed: 3}
	sc.Apply(0, inj)
	sc.Revert(200*time.Millisecond, inj)
	if err := sc.Install(tb.System()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RequestAllocation(); err != nil {
		t.Fatal(err)
	}
	waitAll(t, tb, 5*time.Second, cl)
	if tb.Ctrl.DigestsDropped == 0 {
		t.Error("digest-drop injector inert")
	}
	if cl.Retries == 0 {
		t.Error("client never retried while digests were dropped")
	}
}

func TestFlappingPortClientRidesThrough(t *testing.T) {
	tb := newBed(t)
	srv := addServer(t, tb)
	_, cl := addCache(t, tb, 1, srv)
	cl.RetryAfter = 30 * time.Millisecond

	sc := chaos.FlappingPort(cl.Port(), 100*time.Millisecond, 3, 9)
	if err := sc.Install(tb.System()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RequestAllocation(); err != nil {
		t.Fatal(err)
	}
	waitAll(t, tb, 10*time.Second, cl)
	// Let the remaining flaps play out; an idle operational client rides
	// through them.
	tb.RunFor(time.Second)
	if cl.State() != client.Operational {
		t.Errorf("state = %v after flaps settled", cl.State())
	}
	if cl.Port().DroppedDown == 0 && cl.Port().Peer().DroppedDown == 0 {
		t.Error("flapping port dropped nothing")
	}
	if len(sc.Trace()) != 6 {
		t.Errorf("trace = %v", sc.Trace())
	}
}

// TestFlakyLinkScenarioDeterministic replays the same scenario (same seed,
// same topology) twice and requires bit-identical event traces and client
// counters — the reproducibility contract of the chaos layer.
func TestFlakyLinkScenarioDeterministic(t *testing.T) {
	run := func() (string, [6]uint64, int) {
		tb := newBed(t)
		srv := addServer(t, tb)
		_, cl1 := addCache(t, tb, 1, srv)
		_, cl2 := addCache(t, tb, 2, srv)
		sc := chaos.FlakyLink([]*netsim.Port{cl1.Port(), cl2.Port()}, 99)
		if err := sc.Install(tb.System()); err != nil {
			t.Fatal(err)
		}
		_ = cl1.RequestAllocation()
		_ = cl2.RequestAllocation()
		tb.RunFor(4 * time.Second)
		return chaos.TraceString(sc.Trace()),
			[6]uint64{cl1.Sent, cl1.Received, cl1.Retries, cl2.Sent, cl2.Received, cl2.Retries},
			len(tb.Ctrl.Records)
	}
	t1, c1, r1 := run()
	t2, c2, r2 := run()
	if t1 != t2 {
		t.Errorf("traces differ:\n%s\n--- vs ---\n%s", t1, t2)
	}
	if c1 != c2 {
		t.Errorf("counters differ: %v vs %v", c1, c2)
	}
	if r1 != r2 {
		t.Errorf("record counts differ: %d vs %d", r1, r2)
	}
	if t1 == "" {
		t.Error("empty trace")
	}
}
