package chaos

import (
	"math/rand"
	"sort"
	"time"

	"activermt/internal/isa"
	"activermt/internal/netsim"
	"activermt/internal/packet"
)

// Adversary is a netsim endpoint that emits hostile active traffic: forged
// identities, malformed capsules, recirculation bombs, and out-of-bounds
// memory probes. It models the adversarial tenant of the threat model — a
// host that completed (or skipped) admission and then deviates from the
// protocol. An adversary can be "armed" with a legitimately granted FID and
// epoch, in which case its capsules authenticate at the guard and its
// violations are charged to that tenant ledger; unarmed traffic exercises
// the port-attributed ingress checks instead.
type Adversary struct {
	eng   *netsim.Engine
	mac   packet.MAC
	swMAC packet.MAC
	port  *netsim.Port
	seq   uint32

	fid   uint16 // armed tenant identity (0 = unarmed)
	epoch uint8  // armed grant epoch echoed in capsules

	// Counters.
	Sent    uint64
	Replies uint64
}

// NewAdversary builds an adversary host. Attach it to a switch port before
// sending.
func NewAdversary(eng *netsim.Engine, mac, swMAC packet.MAC) *Adversary {
	return &Adversary{eng: eng, mac: mac, swMAC: swMAC}
}

// Attach wires the adversary's switch-facing port.
func (a *Adversary) Attach(p *netsim.Port) { a.port = p }

// Arm gives the adversary a tenant identity: subsequent authenticated sends
// claim this FID and echo this grant epoch.
func (a *Adversary) Arm(fid uint16, epoch uint8) {
	a.fid = fid
	a.epoch = epoch
}

// FID returns the armed identity (0 when unarmed).
func (a *Adversary) FID() uint16 { return a.fid }

// Receive implements netsim.Endpoint; the adversary only counts replies.
func (a *Adversary) Receive(frame []byte, port *netsim.Port) { a.Replies++ }

func (a *Adversary) send(act *packet.Active) {
	if a.port == nil {
		return
	}
	f := &packet.Frame{
		Eth:    packet.EthHeader{Dst: a.swMAC, Src: a.mac, EtherType: packet.EtherTypeActive},
		Active: act,
	}
	raw, err := packet.EncodeFrame(f)
	if err != nil {
		return
	}
	a.Sent++
	a.port.Send(raw)
}

func (a *Adversary) sendRaw(raw []byte) {
	if a.port == nil {
		return
	}
	a.Sent++
	a.port.Send(raw)
}

func (a *Adversary) header(fid uint16, epoch uint8) packet.ActiveHeader {
	a.seq++
	h := packet.ActiveHeader{FID: fid, Opaque: uint32(epoch)}
	h.SetType(packet.TypeProgram)
	return h
}

// SendMalformed emits a capsule that decodes but fails structural
// validation: a branch to an undefined label. The guard charges it to the
// ingress port as KindMalformed.
func (a *Adversary) SendMalformed() {
	prog := &isa.Program{Name: "malformed", Instrs: []isa.Instruction{
		{Op: isa.OpUJump, Operand: 5}, // no label 5 anywhere
		{Op: isa.OpReturn},
	}}
	a.send(&packet.Active{Header: a.header(a.fid, a.epoch), Program: prog})
}

// SendTruncated emits a program capsule whose byte stream is cut mid-header,
// exercising the frame parser's short-input paths (the fuzz targets' corpus
// in live traffic). The switch drops it at decode.
func (a *Adversary) SendTruncated() {
	prog := &isa.Program{Instrs: []isa.Instruction{{Op: isa.OpNop}, {Op: isa.OpReturn}}}
	f := &packet.Frame{
		Eth:    packet.EthHeader{Dst: a.swMAC, Src: a.mac, EtherType: packet.EtherTypeActive},
		Active: &packet.Active{Header: a.header(a.fid, a.epoch), Program: prog},
	}
	raw, err := packet.EncodeFrame(f)
	if err != nil {
		return
	}
	// Cut into the argument header: past the initial header, short of args.
	cut := packet.EthHeaderSize + packet.InitialHeaderSize + 5
	if cut > len(raw) {
		cut = len(raw) - 1
	}
	a.sendRaw(raw[:cut])
}

// SendForged emits an innocuous program under someone else's FID with a
// guessed epoch. Unless the guess matches the victim's current 7-bit grant
// epoch, the guard rejects it as KindBadEpoch — and charges the ingress
// port, not the framed victim.
func (a *Adversary) SendForged(victim uint16, guessedEpoch uint8) {
	prog := &isa.Program{Name: "forged", Instrs: []isa.Instruction{
		{Op: isa.OpNop},
		{Op: isa.OpReturn},
	}}
	a.send(&packet.Active{Header: a.header(victim, guessedEpoch), Program: prog})
}

// SendRecircBomb emits an authenticated program of n instructions. With
// n beyond the guard's instruction budget this is an over-budget violation;
// with n just over one pipeline length it legitimately recirculates and
// drains the sender's recirculation tokens instead.
func (a *Adversary) SendRecircBomb(n int) {
	instrs := make([]isa.Instruction, 0, n)
	for i := 0; i < n-1; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.OpNop})
	}
	instrs = append(instrs, isa.Instruction{Op: isa.OpReturn})
	prog := &isa.Program{Name: "recirc-bomb", Instrs: instrs}
	a.send(&packet.Active{Header: a.header(a.fid, a.epoch), Program: prog})
}

// SendOOBWrite emits an authenticated program that loads a raw register
// address and writes at pipeline stage `stage` — a probe for the TCAM range
// protection. Addresses outside the adversary's own region fault in the
// data plane and surface as KindMemFault violations on its ledger.
func (a *Adversary) SendOOBWrite(stage int, addr, value uint32) {
	idx := stage
	if idx < 2 {
		idx += packet.NumStages // reach early stages on the second pass
	}
	instrs := make([]isa.Instruction, 0, idx+2)
	instrs = append(instrs,
		isa.Instruction{Op: isa.OpMbrLoad, Operand: 0}, // MBR <- data[0] (value)
		isa.Instruction{Op: isa.OpMarLoad, Operand: 2}, // MAR <- data[2] (raw addr)
	)
	for len(instrs) < idx {
		instrs = append(instrs, isa.Instruction{Op: isa.OpNop})
	}
	instrs = append(instrs, isa.Instruction{Op: isa.OpMemWrite}, isa.Instruction{Op: isa.OpReturn})
	prog := &isa.Program{Name: "oob-write", Instrs: instrs}
	a.send(&packet.Active{
		Header:  a.header(a.fid, a.epoch),
		Args:    [packet.NumDataFields]uint32{value, 0, addr, 0},
		Program: prog,
	})
}

// AdversaryBurst is an injector that schedules a burst of hostile sends
// from an Adversary endpoint. Kind selects the attack:
//
//	"malformed"  capsules that fail validation (port-attributed)
//	"truncated"  byte streams cut mid-header (dropped at decode)
//	"forged"     innocuous programs under VictimFID with guessed epochs
//	"recirc"     over-budget programs (tenant-attributed when armed)
//	"oob"        raw-address writes sweeping the victim's granted regions
//
// The "oob" kind resolves the victim's installed regions lazily at apply
// time (like RegisterCorruption), so the burst targets wherever the victim
// actually landed after allocation or churn.
type AdversaryBurst struct {
	Adv       *Adversary
	Kind      string
	N         int
	Gap       time.Duration
	VictimFID uint16
	Seed      int64
}

// Name implements Injector.
func (b AdversaryBurst) Name() string { return "adversary-" + b.Kind }

// Apply schedules the burst on the system's engine.
func (b AdversaryBurst) Apply(sys *System) {
	n := b.N
	if n <= 0 {
		n = 1
	}
	rng := rand.New(rand.NewSource(b.Seed))
	// Resolve out-of-bounds targets now: one (stage, addr) probe per send,
	// swept across the victim's granted words.
	type probe struct {
		stage int
		addr  uint32
	}
	var probes []probe
	if b.Kind == "oob" && sys.RT != nil {
		regions := sys.RT.InstalledRegions(b.VictimFID)
		stages := make([]int, 0, len(regions))
		for s := range regions {
			stages = append(stages, s)
		}
		sort.Ints(stages) // map order would break scenario determinism
		for _, s := range stages {
			reg := regions[s]
			for w := reg.Lo; w < reg.Hi; w++ {
				probes = append(probes, probe{stage: s, addr: w})
			}
		}
	}
	for i := 0; i < n; i++ {
		i := i
		sys.Eng.Schedule(time.Duration(i)*b.Gap, func() {
			switch b.Kind {
			case "malformed":
				b.Adv.SendMalformed()
			case "truncated":
				b.Adv.SendTruncated()
			case "forged":
				b.Adv.SendForged(b.VictimFID, uint8(rng.Intn(int(packet.EpochMax))+1))
			case "recirc":
				// Past the device's recirculation ceiling: the guard (or
				// the recirc limiter) must refuse it.
				bomb := 2*packet.NumStages + 4
				if sys.RT != nil {
					cfg := sys.RT.Device().Config()
					bomb = cfg.MaxPasses*cfg.NumStages + 4
				}
				b.Adv.SendRecircBomb(bomb)
			case "oob":
				if len(probes) == 0 {
					b.Adv.SendOOBWrite(5, 1<<20, 0xDEAD)
					return
				}
				p := probes[i%len(probes)]
				b.Adv.SendOOBWrite(p.stage, p.addr, 0xDEAD)
			}
		})
	}
}

// Revert is a no-op: a burst already sent cannot be unsent.
func (b AdversaryBurst) Revert(sys *System) {}
