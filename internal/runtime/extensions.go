package runtime

import (
	"math"
	"sync/atomic"
	"time"

	"activermt/internal/isa"
	"activermt/internal/rmt"
)

// This file implements the extensions the paper sketches in Section 7:
//
//   - a recirculation fairness controller ("one could contemplate
//     implementing a fairness controller that accounted for bandwidth
//     inflation due to recirculations and rate-limited services
//     appropriately", Section 7.2), realized as a per-FID token bucket
//     charged one token per extra pipeline pass;
//   - privilege levels for active programs ("adding a notion of privilege
//     levels to active programs; we are exploring the latter in ongoing
//     work", Section 7.2), realized as a per-FID privilege bit gating the
//     forwarding-affecting instructions (SET_DST, FORK, DROP);
//   - the extended runtime with baseline L2 protocol support merged in
//     ("we integrated a subset of L2-forwarding functionality from
//     switch.p4, but were forced to remove one stage from active program
//     processing ... increases latency by ~4%", Section 7.1), realized as
//     a configuration transform.

// RecircPolicy configures the recirculation fairness controller. A FID may
// consume Budget extra pipeline passes per Window; packets that would
// exceed the budget are dropped before execution (recirculation inflates
// bandwidth, so policing happens at admission to the pipeline).
type RecircPolicy struct {
	Budget int
	Window time.Duration
}

// recircState is one FID's token-bucket state.
type recircState struct {
	tokens      int
	windowStart time.Duration
}

// EnableRecircLimiter activates per-FID recirculation policing. now is the
// virtual-clock source (the controller's engine).
func (r *Runtime) EnableRecircLimiter(p RecircPolicy, now func() time.Duration) {
	r.recircPolicy = p
	r.recircNow = now
	r.recirc = make(map[uint16]*recircState)
}

// RecircAllowed charges the extra passes a program will consume and reports
// whether the packet may enter the pipeline. Unlike the rest of the runtime
// (which the single-threaded simulation engine serializes), the limiter is
// safe to call from concurrent goroutines: bucket state is mutex-guarded
// and the throttle counter is updated atomically, modeling the per-pipe
// hardware meters that are consulted without control-plane coordination.
func (r *Runtime) RecircAllowed(fid uint16, progLen int) bool {
	if r.recirc == nil {
		return true
	}
	n := r.dev.Config().NumStages
	extra := (progLen - 1) / n // full passes beyond the first
	if extra <= 0 {
		return true
	}
	now := r.recircNow()
	r.recircMu.Lock()
	st, ok := r.recirc[fid]
	if !ok || now-st.windowStart >= r.recircPolicy.Window {
		st = &recircState{tokens: r.recircPolicy.Budget, windowStart: now}
		r.recirc[fid] = st
	}
	if st.tokens < extra {
		r.recircMu.Unlock()
		atomic.AddUint64(&r.RecircThrottled, 1)
		if t := r.tel; t != nil {
			t.RecircThrottled.Inc()
		}
		return false
	}
	st.tokens -= extra
	r.recircMu.Unlock()
	return true
}

// RecircBudgetRemaining reports the extra-pass tokens fid has left in its
// current window, so cooperative recirculation apps (the probabilistic
// heavy hitter) can defer multi-pass capsules instead of tripping the
// limiter and landing in the guard's recirc-throttled ledger. The answer is
// conservative in the caller's favor: a window rollover between this call
// and admission only refills the bucket, so a capsule sent while
// remaining >= its extra passes is never throttled (assuming the FID has a
// single cooperating sender). With the limiter disabled every budget query
// reports "unlimited".
func (r *Runtime) RecircBudgetRemaining(fid uint16) int {
	if r.recirc == nil {
		return math.MaxInt
	}
	now := r.recircNow()
	r.recircMu.Lock()
	defer r.recircMu.Unlock()
	st, ok := r.recirc[fid]
	if !ok || now-st.windowStart >= r.recircPolicy.Window {
		return r.recircPolicy.Budget
	}
	return st.tokens
}

// Privilege levels: unprivileged programs may compute and access their own
// memory but cannot affect forwarding beyond returning to their sender.
const (
	// PrivForwarding permits SET_DST, FORK, and DROP.
	PrivForwarding uint8 = 1 << 0
)

// SetPrivilege assigns a FID's privilege mask (counts as one table update).
func (r *Runtime) SetPrivilege(fid uint16, mask uint8) {
	if r.privilege == nil {
		r.privilege = make(map[uint16]uint8)
	}
	r.privilege[fid] = mask
	r.TableOps++
	r.publish()
}

// privilegeOf returns the FID's mask; FIDs without an explicit assignment
// are fully privileged (the paper's deployments assume authenticated edges;
// privilege levels are the hardening extension). Reads the published
// control snapshot, like the rest of the packet path.
func (r *Runtime) privilegeOf(fid uint16) uint8 {
	v := r.view()
	if !v.hasPriv {
		return ^uint8(0)
	}
	m, ok := v.privilege[fid]
	if !ok {
		return ^uint8(0)
	}
	return m
}

// Mirror sessions: the FORK instruction's operand names a clone session
// whose egress port the control plane configures — the Tofino clone-session
// model, used by the mirroring service to steer copies to a collector.

// SetMirrorSession installs (fid, session) -> egress port.
func (r *Runtime) SetMirrorSession(fid uint16, session uint8, port uint32) {
	if r.mirror == nil {
		r.mirror = make(map[uint32]uint32)
	}
	r.mirror[mirrorKey(fid, session)] = port
	r.TableOps++
	r.publish()
}

// ClearMirrorSession removes a session.
func (r *Runtime) ClearMirrorSession(fid uint16, session uint8) {
	delete(r.mirror, mirrorKey(fid, session))
	r.TableOps++
	r.publish()
}

// MirrorSession looks up a session's egress port in the published control
// snapshot (consulted by the FORK action on the packet path).
func (r *Runtime) MirrorSession(fid uint16, session uint8) (uint32, bool) {
	p, ok := r.view().mirror[mirrorKey(fid, session)]
	return p, ok
}

func mirrorKey(fid uint16, session uint8) uint32 {
	return uint32(fid)<<8 | uint32(session)
}

// ExtendedForwardingConfig derives the configuration of the Section 7.1
// extended runtime: merging baseline L2 protocol support costs one stage of
// active processing and about 4% latency.
func ExtendedForwardingConfig(cfg rmt.Config) rmt.Config {
	out := cfg
	out.NumStages = cfg.NumStages - 1
	if out.NumIngress >= out.NumStages {
		out.NumIngress = out.NumStages - 1
	}
	out.PassLatency = cfg.PassLatency * 104 / 100
	return out
}

// dropUnprivileged applies privilege gating to a PHV before execution: the
// forwarding-affecting opcodes are rewritten to NOPs for unprivileged FIDs,
// exactly as a match-table privilege qualifier would suppress the actions.
func (r *Runtime) applyPrivilege(fid uint16, p *rmt.PHV) {
	mask := r.privilegeOf(fid)
	if mask&PrivForwarding != 0 {
		return
	}
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.OpSetDst, isa.OpFork, isa.OpDrop:
			p.Instrs[i].Op = isa.OpNop
			r.PrivSuppressed++
		}
	}
}
