package runtime

import (
	"sync"
	"testing"
	"time"

	"activermt/internal/packet"
)

// Regression: a FID whose grant was removed must hard-drop, not fall through
// to stage-NOP passthrough. Before the guard work, RemoveGrant left the FID
// indistinguishable from a never-admitted one, so its packets were forwarded
// unexecuted — a revoked tenant kept using switch bandwidth.
func TestRevokedFIDHardDrops(t *testing.T) {
	r := testRuntime(t)
	const fid = 11
	installCacheGrant(t, r, fid, 0, 64)
	r.RemoveGrant(fid)

	outs := r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0}))
	if len(outs) != 1 {
		t.Fatalf("outputs = %d", len(outs))
	}
	if !outs[0].Dropped {
		t.Fatal("revoked FID's packet must drop, not pass through")
	}
	if outs[0].Active.Header.Flags&packet.FlagFailed == 0 {
		t.Error("revoked drop must set FlagFailed")
	}
	if r.RevokedDrops != 1 {
		t.Errorf("RevokedDrops = %d, want 1", r.RevokedDrops)
	}
	if r.Passthrough != 0 {
		t.Errorf("Passthrough = %d, want 0 (revoked is not a table miss)", r.Passthrough)
	}

	// A fresh grant clears revocation: the FID executes again.
	installCacheGrant(t, r, fid, 0, 64)
	outs = r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0}))
	if outs[0].Dropped {
		t.Error("re-admitted FID must execute")
	}
}

// Regression: quarantined (deactivated) FIDs must hard-drop normal traffic
// while still executing FlagMemSync extraction programs, and a reactivated
// FID resumes normally.
func TestQuarantineHardDropAndMemSync(t *testing.T) {
	r := testRuntime(t)
	const fid = 12
	installCacheGrant(t, r, fid, 0, 64)
	r.Deactivate(fid)

	outs := r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0}))
	if !outs[0].Dropped {
		t.Fatal("quarantined FID's normal traffic must drop")
	}
	if outs[0].Active.Header.Flags&packet.FlagFailed == 0 {
		t.Error("quarantine drop must set FlagFailed")
	}
	if r.QuarantineDrops != 1 {
		t.Errorf("QuarantineDrops = %d, want 1", r.QuarantineDrops)
	}

	// Extraction traffic still runs against the frozen snapshot.
	ms := progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0})
	ms.Header.Flags |= packet.FlagMemSync
	outs = r.ExecuteProgram(ms)
	if outs[0].Dropped {
		t.Error("FlagMemSync traffic must execute during quarantine")
	}

	r.Reactivate(fid)
	outs = r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0}))
	if outs[0].Dropped {
		t.Error("reactivated FID must execute")
	}
	if r.QuarantineDrops != 1 {
		t.Errorf("QuarantineDrops = %d after reactivation, want still 1", r.QuarantineDrops)
	}
}

// The recirculation limiter must be safe under concurrent multi-FID load:
// per-pipe meters are consulted without control-plane serialization. Run
// with -race; the assertions check token-bucket conservation per FID.
func TestRecircAllowedConcurrent(t *testing.T) {
	r := testRuntime(t)
	const budget = 8
	r.EnableRecircLimiter(RecircPolicy{Budget: budget, Window: time.Hour}, func() time.Duration { return 0 })

	n := r.Device().Config().NumStages
	twoPass := n + 1 // costs one token per call

	const fids = 8
	const callsPerFID = 64
	var wg sync.WaitGroup
	allowed := make([]uint64, fids)
	for i := 0; i < fids; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < callsPerFID; c++ {
				if r.RecircAllowed(uint16(100+i), twoPass) {
					allowed[i]++
				}
			}
		}()
	}
	wg.Wait()

	for i, got := range allowed {
		if got != budget {
			t.Errorf("fid %d: %d passes allowed, want exactly %d", 100+i, got, budget)
		}
	}
	wantThrottled := uint64(fids * (callsPerFID - budget))
	if r.RecircThrottled != wantThrottled {
		t.Errorf("RecircThrottled = %d, want %d", r.RecircThrottled, wantThrottled)
	}

	// Single-pass programs are never charged, even with the bucket empty.
	if !r.RecircAllowed(100, n) {
		t.Error("single-pass program throttled")
	}
}

// Grant epochs count 1..127 and wrap back to 1; 0 always means "no epoch".
func TestEpochLifecycle(t *testing.T) {
	r := testRuntime(t)
	const fid = 13
	if r.Epoch(fid) != 0 {
		t.Fatalf("epoch before admission = %d, want 0", r.Epoch(fid))
	}
	installCacheGrant(t, r, fid, 0, 64)
	if r.Epoch(fid) != 1 {
		t.Fatalf("epoch after first grant = %d, want 1", r.Epoch(fid))
	}
	r.RemoveGrant(fid)
	if !r.Revoked(fid) {
		t.Fatal("RemoveGrant must mark the FID revoked")
	}
	if r.Epoch(fid) != 1 {
		t.Errorf("epoch must survive revocation, got %d", r.Epoch(fid))
	}
	installCacheGrant(t, r, fid, 0, 64)
	if r.Revoked(fid) {
		t.Error("fresh grant must clear revocation")
	}
	if r.Epoch(fid) != 2 {
		t.Errorf("epoch after re-grant = %d, want 2", r.Epoch(fid))
	}

	// Wrap: 127 -> 1, skipping 0.
	if got := nextEpoch(packet.EpochMax); got != 1 {
		t.Errorf("nextEpoch(127) = %d, want 1", got)
	}
	if got := nextEpoch(0); got != 1 {
		t.Errorf("nextEpoch(0) = %d, want 1", got)
	}
}
