package runtime

import (
	"math"
	"testing"
	"time"

	"activermt/internal/isa"
	"activermt/internal/rmt"
)

func TestRecircLimiterThrottles(t *testing.T) {
	r := testRuntime(t)
	const fid = 3
	r.AdmitStateless(fid)

	var now time.Duration
	r.EnableRecircLimiter(RecircPolicy{Budget: 2, Window: time.Second}, func() time.Duration { return now })

	// A 45-instruction program needs 2 extra passes.
	long := &isa.Program{Name: "long"}
	for i := 0; i < 44; i++ {
		long.Instrs = append(long.Instrs, isa.Instruction{Op: isa.OpNop})
	}
	long.Instrs = append(long.Instrs, isa.Instruction{Op: isa.OpReturn})

	// First packet consumes the whole budget; the second is dropped.
	outs := r.ExecuteProgram(progPacket(fid, long.Clone(), [4]uint32{}))
	if outs[0].Dropped {
		t.Fatal("first recirculating packet dropped")
	}
	outs = r.ExecuteProgram(progPacket(fid, long.Clone(), [4]uint32{}))
	if !outs[0].Dropped {
		t.Fatal("over-budget packet not dropped")
	}
	if r.RecircThrottled != 1 {
		t.Errorf("throttled = %d", r.RecircThrottled)
	}

	// Short programs are never policed.
	short := isa.MustAssemble("s", "NOP\nRETURN")
	outs = r.ExecuteProgram(progPacket(fid, short.Clone(), [4]uint32{}))
	if outs[0].Dropped {
		t.Error("single-pass program throttled")
	}

	// A new window refills the bucket.
	now += 2 * time.Second
	outs = r.ExecuteProgram(progPacket(fid, long.Clone(), [4]uint32{}))
	if outs[0].Dropped {
		t.Error("budget not refilled after window")
	}
}

func TestRecircLimiterPerFID(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(1)
	r.AdmitStateless(2)
	r.EnableRecircLimiter(RecircPolicy{Budget: 1, Window: time.Second}, func() time.Duration { return 0 })
	long := &isa.Program{}
	for i := 0; i < 25; i++ {
		long.Instrs = append(long.Instrs, isa.Instruction{Op: isa.OpNop})
	}
	// FID 1 exhausts its own budget; FID 2 is unaffected.
	r.ExecuteProgram(progPacket(1, long.Clone(), [4]uint32{}))
	if outs := r.ExecuteProgram(progPacket(1, long.Clone(), [4]uint32{})); !outs[0].Dropped {
		t.Error("fid 1 not throttled")
	}
	if outs := r.ExecuteProgram(progPacket(2, long.Clone(), [4]uint32{})); outs[0].Dropped {
		t.Error("fid 2 throttled by fid 1's usage")
	}
}

func TestRecircBudgetRemainingBoundary(t *testing.T) {
	r := testRuntime(t)
	const fid = 9
	r.AdmitStateless(fid)

	// Limiter disabled: every query reports unlimited.
	if got := r.RecircBudgetRemaining(fid); got != math.MaxInt {
		t.Fatalf("disabled limiter remaining = %d, want MaxInt", got)
	}

	var now time.Duration
	r.EnableRecircLimiter(RecircPolicy{Budget: 2, Window: time.Second}, func() time.Duration { return now })

	// No bucket yet: full budget.
	if got := r.RecircBudgetRemaining(fid); got != 2 {
		t.Fatalf("fresh FID remaining = %d, want 2", got)
	}

	// A 25-instruction program costs one extra pass.
	long := &isa.Program{Name: "long"}
	for i := 0; i < 24; i++ {
		long.Instrs = append(long.Instrs, isa.Instruction{Op: isa.OpNop})
	}
	long.Instrs = append(long.Instrs, isa.Instruction{Op: isa.OpReturn})

	// remaining == extra is the admissible boundary: both tokens spend
	// cleanly, then the very next capsule throttles.
	for want := 1; want >= 0; want-- {
		if outs := r.ExecuteProgram(progPacket(fid, long.Clone(), [4]uint32{})); outs[0].Dropped {
			t.Fatalf("capsule with remaining > 0 dropped (want left %d)", want)
		}
		if got := r.RecircBudgetRemaining(fid); got != want {
			t.Fatalf("remaining = %d, want %d", got, want)
		}
	}
	if outs := r.ExecuteProgram(progPacket(fid, long.Clone(), [4]uint32{})); !outs[0].Dropped {
		t.Fatal("capsule admitted at remaining 0")
	}
	if r.RecircThrottled != 1 {
		t.Fatalf("throttled = %d, want 1", r.RecircThrottled)
	}

	// A cooperative caller that polls before sending never throttles: the
	// query itself must not charge the bucket.
	if got := r.RecircBudgetRemaining(fid); got != 0 {
		t.Fatalf("remaining after drop = %d, want 0", got)
	}
	if got := r.RecircBudgetRemaining(fid); got != 0 {
		t.Fatalf("second query changed remaining: %d", got)
	}

	// Exactly one window later the bucket reads full again (>= Window is
	// the rollover condition in RecircAllowed; the accessor must agree).
	now += time.Second
	if got := r.RecircBudgetRemaining(fid); got != 2 {
		t.Fatalf("remaining after window rollover = %d, want 2", got)
	}
}

func TestPrivilegeGatesForwarding(t *testing.T) {
	r := testRuntime(t)
	const fid = 9
	r.AdmitStateless(fid)
	prog := isa.MustAssemble("route", "MBR_LOAD 0\nSET_DST\nRETURN")

	// Fully privileged by default.
	outs := r.ExecuteProgram(progPacket(fid, prog.Clone(), [4]uint32{42}))
	if !outs[0].DstSet || outs[0].Dst != 42 {
		t.Fatal("privileged SET_DST suppressed")
	}

	// Revoke forwarding privilege: SET_DST becomes a NOP.
	r.SetPrivilege(fid, 0)
	outs = r.ExecuteProgram(progPacket(fid, prog.Clone(), [4]uint32{42}))
	if outs[0].DstSet {
		t.Fatal("unprivileged SET_DST took effect")
	}
	if r.PrivSuppressed == 0 {
		t.Error("suppression not counted")
	}

	// DROP and FORK are gated too; RTS (reply to own sender) is not.
	dropper := isa.MustAssemble("d", "DROP")
	if outs := r.ExecuteProgram(progPacket(fid, dropper.Clone(), [4]uint32{})); outs[0].Dropped {
		t.Error("unprivileged DROP executed")
	}
	forker := isa.MustAssemble("f", "FORK\nRETURN")
	if outs := r.ExecuteProgram(progPacket(fid, forker.Clone(), [4]uint32{})); len(outs) != 1 {
		t.Error("unprivileged FORK cloned")
	}
	rts := isa.MustAssemble("r", "RTS\nRETURN")
	if outs := r.ExecuteProgram(progPacket(fid, rts.Clone(), [4]uint32{})); !outs[0].ToSender {
		t.Error("RTS should remain available to unprivileged programs")
	}

	// Restoring privilege restores the instruction.
	r.SetPrivilege(fid, PrivForwarding)
	outs = r.ExecuteProgram(progPacket(fid, prog.Clone(), [4]uint32{42}))
	if !outs[0].DstSet {
		t.Error("restored privilege ineffective")
	}
}

func TestExtendedForwardingConfig(t *testing.T) {
	base := rmt.DefaultConfig()
	ext := ExtendedForwardingConfig(base)
	if ext.NumStages != base.NumStages-1 {
		t.Errorf("stages = %d, want one fewer (Section 7.1)", ext.NumStages)
	}
	if ext.PassLatency <= base.PassLatency {
		t.Error("latency did not increase")
	}
	ratio := float64(ext.PassLatency) / float64(base.PassLatency)
	if ratio < 1.03 || ratio > 1.05 {
		t.Errorf("latency ratio %.3f, want ~1.04", ratio)
	}
	// The extended runtime still builds and runs.
	r, err := New(ext)
	if err != nil {
		t.Fatal(err)
	}
	r.AdmitStateless(1)
	outs := r.ExecuteProgram(progPacket(1, isa.MustAssemble("p", "NOP\nRETURN").Clone(), [4]uint32{}))
	if !outs[0].Executed {
		t.Error("extended runtime broken")
	}
}
