package runtime

// This file implements the control side of the control/data split: every
// piece of admission state the packet path consults — admitted FIDs,
// quarantine and revocation marks, grant epochs, privilege masks, mirror
// sessions — is collected into one immutable ctrlView and republished via
// atomic.Pointer on every control-plane commit. The hot path (and the
// ingress guard) reads the published view; the mutable maps on Runtime stay
// authoritative for the control plane only.
//
// Together with rmt.PipeView (protection + translation) this forms the
// epoch-published pipeline snapshot: a controller commit is "visible" to
// packets exactly when publish() swaps the pointers, never halfway through
// a multi-table update.

// ctrlView is one immutable published snapshot of the runtime's admission
// state. All maps are copies; readers may share a view across goroutines.
type ctrlView struct {
	admitted    map[uint16]bool
	quarantined map[uint16]bool
	revoked     map[uint16]bool
	epochs      map[uint16]uint8
	privilege   map[uint16]uint8
	hasPriv     bool // privilege table enabled at all
	mirror      map[uint32]uint32
	gen         uint64
}

var emptyCtrlView = &ctrlView{}

// view returns the current published control snapshot (never nil).
func (r *Runtime) view() *ctrlView {
	if v := r.snap.Load(); v != nil {
		return v
	}
	return emptyCtrlView
}

// publish rebuilds the control snapshot from the builder maps and swaps it
// in. Every mutator of admission state must call it (once, after the full
// mutation) so packets never observe a half-applied commit.
//
// With telemetry attached, the pointer swap and every committed-state gauge
// update (admission counts, per-FID epochs, per-stage occupancy) happen
// inside one registry commit window, so a concurrent scrape observes either
// all of this commit's telemetry or none of it.
func (r *Runtime) publish() {
	if t := r.tel; t != nil {
		t.reg.BeginCommit()
		defer t.reg.EndCommit()
	}
	r.snapGen++
	v := &ctrlView{
		admitted:    make(map[uint16]bool, len(r.admitted)),
		quarantined: make(map[uint16]bool, len(r.quarantined)),
		revoked:     make(map[uint16]bool, len(r.revoked)),
		epochs:      make(map[uint16]uint8, len(r.epochs)),
		hasPriv:     r.privilege != nil,
		gen:         r.snapGen,
	}
	for f := range r.admitted {
		v.admitted[f] = true
	}
	for f, q := range r.quarantined {
		v.quarantined[f] = q
	}
	for f, rv := range r.revoked {
		v.revoked[f] = rv
	}
	for f, e := range r.epochs {
		v.epochs[f] = e
	}
	if r.privilege != nil {
		v.privilege = make(map[uint16]uint8, len(r.privilege))
		for f, m := range r.privilege {
			v.privilege[f] = m
		}
	}
	if r.mirror != nil {
		v.mirror = make(map[uint32]uint32, len(r.mirror))
		for k, p := range r.mirror {
			v.mirror[k] = p
		}
	}
	r.snap.Store(v)
	// Invalidate every compiled plan wholesale: plans fold admission,
	// privilege, protection, and translation state from the snapshot pair
	// they were built against, and this commit may have changed any of it.
	// The fresh table is keyed to the new pair, so packets recompile (once
	// per program version) against the state just published.
	r.resetPlans(v)
	if r.tel != nil {
		r.syncGauges(v)
	}
}

// SnapshotGen returns the generation of the current published control view
// (0 before the first publication) — used by tests to prove publication
// ordering.
func (r *Runtime) SnapshotGen() uint64 { return r.view().gen }
