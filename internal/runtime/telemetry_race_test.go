package runtime

import (
	gort "runtime"
	"sync"
	"sync/atomic"
	"testing"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/telemetry"
)

// nopProbe keeps no switch state — the toggled tenant below executes it so
// grant install/remove never races the permanent tenant's register traffic.
var nopProbe = isa.MustAssemble("nop-probe", `
RTS
RETURN
`)

// snapGauge extracts one gauge sample from a snapshot by family name and
// rendered label pair ("" for unlabeled gauges).
func snapGauge(s *telemetry.Snapshot, name, labels string) (float64, bool) {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		for _, smp := range m.Samples {
			if smp.Labels == labels {
				return smp.Value, true
			}
		}
	}
	return 0, false
}

// TestTelemetryScrapeRacesGrantCommit is the consistency gate for the
// snapshot seqlock: scrapes run concurrently with a control plane that
// repeatedly installs and evicts a tenant's grant (and quarantines another)
// while the dataplane executes capsules for both. Every snapshot must be
// commit-atomic — the admission gauges set together inside one publish()
// must never be observed half-updated — and a flight-recorder entry may
// resolve Live only when the snapshot's own view still holds that exact
// (FID, epoch) grant. Run under -race this also proves the scrape path
// shares no unsynchronized state with commits or the executor.
func TestTelemetryScrapeRacesGrantCommit(t *testing.T) {
	r := testRuntime(t)
	reg := telemetry.NewRegistry()
	r.AttachTelemetry(reg)
	installCacheGrant(t, r, 1, 0, 1024) // permanent tenant: exercises memory

	const toggled = uint16(2)
	const cycles = 200
	done := make(chan struct{})
	var execs atomic.Uint64 // executor loop iterations, for interleaving
	var wg sync.WaitGroup

	// Control plane: install/evict the toggled tenant's (memoryless) grant,
	// with a quarantine round-trip on the permanent tenant mixed in. Between
	// commits it waits for the executor to run a couple of capsules, so both
	// tenants execute against every admission state even at GOMAXPROCS=1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		progress := func(prev uint64) uint64 {
			for execs.Load() < prev+2 {
				gort.Gosched()
			}
			return execs.Load()
		}
		p := uint64(0)
		for i := 0; i < cycles; i++ {
			if _, err := r.InstallGrant(Grant{FID: toggled}); err != nil {
				t.Errorf("install cycle %d: %v", i, err)
				return
			}
			p = progress(p)
			if i%8 == 0 {
				r.Deactivate(1)
				r.Reactivate(1)
			}
			r.RemoveGrant(toggled)
			p = progress(p)
		}
	}()

	// Dataplane: one executor lane running both tenants' capsules against
	// whatever view is published. The toggled tenant's capsules land as
	// executed, passthrough, or revoked drops depending on commit timing —
	// refusals force-record into the lane flight recorder.
	wg.Add(1)
	go func() {
		defer wg.Done()
		res := NewExecResult()
		sink := r.NewExecSink()
		cache := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
		cache.Header.Flags |= packet.FlagPreload
		probe := progPacket(toggled, nopProbe, [4]uint32{})
		for {
			select {
			case <-done:
				sink.Path.FlushInto(r)
				sink.Dev.FlushInto(r.Device())
				return
			default:
			}
			r.ExecuteCapsule(cache, res, sink)
			r.ExecuteCapsule(probe, res, sink)
			r.DeliverEvents(sink)
			execs.Add(1)
			gort.Gosched()
		}
	}()

	// Scrapers: validate commit atomicity on every snapshot. The admitted
	// and revoked gauges are written in the same commit window and — once
	// the toggled tenant has been granted at least once — always sum to 2
	// (fid 1 admitted, fid 2 either admitted or revoked). A torn read of a
	// commit yields 1 or 3.
	scrape := func(snap *telemetry.Snapshot) {
		if !snap.Consistent {
			t.Error("snapshot reported inconsistent")
			return
		}
		admitted, _ := snapGauge(snap, "activermt_runtime_admitted", "")
		revoked, _ := snapGauge(snap, "activermt_runtime_revoked", "")
		epoch2, seen := snapGauge(snap, "activermt_grant_epoch", `fid="2"`)
		if seen && admitted+revoked != 2 {
			t.Errorf("mixed-epoch snapshot: admitted=%v revoked=%v (want sum 2)", admitted, revoked)
		}
		for _, e := range snap.Flights {
			if e.FID != toggled || !e.Live {
				continue
			}
			if revoked != 0 {
				t.Errorf("flight entry (fid=%d epoch=%d) live in a snapshot where the grant is revoked", e.FID, e.Epoch)
			}
			if float64(e.Epoch) != epoch2 {
				t.Errorf("flight entry live at epoch %d but snapshot grant epoch is %v", e.Epoch, epoch2)
			}
		}
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					scrape(reg.Snapshot())
					gort.Gosched()
				}
			}
		}()
	}
	wg.Wait()

	// Terminal state: the toggler's last act was an eviction, so no flight
	// entry for the toggled tenant may survive as live.
	final := reg.Snapshot()
	sawToggled := false
	for _, e := range final.Flights {
		if e.FID != toggled {
			continue
		}
		sawToggled = true
		if e.Live {
			t.Fatalf("final snapshot holds a live flight entry for evicted fid %d (epoch %d, verdict %v)", e.FID, e.Epoch, e.Verdict)
		}
	}
	if !sawToggled {
		t.Fatal("flight recorder holds no entries for the toggled tenant; refusal force-recording is broken")
	}
	if g, _ := snapGauge(final, "activermt_runtime_revoked", ""); g != 1 {
		t.Fatalf("final revoked gauge %v, want 1", g)
	}
}
