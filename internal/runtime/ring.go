package runtime

import (
	"sync/atomic"
	"time"

	"activermt/internal/packet"
)

// This file is the lane dispatch fabric: one bounded single-producer/
// single-consumer ring per lane, replacing the channel-based hand-off that
// capped multi-core scaling. A channel send takes the channel lock, may park
// the sender, and shares its internal state across every lane; the ring is
// two cache-line-separated cursors and an array of lane-owned batch slabs.
// The dispatch thread writes capsule pointers straight into the slab of the
// slot it is filling (zero-copy hand-off: no intermediate batch slice, no
// free-list, no allocation) and publishes the slot with one atomic store;
// the lane worker consumes with one atomic load and releases with one atomic
// store. Go's atomics give the release/acquire edges: every slab write the
// producer performs before tail.Store is visible to the consumer after it
// loads the new tail, and vice versa for head on release.

// laneRingSlots is the ring capacity in batches (a power of two). Eight
// batches of DefaultLaneBatch capsules give each lane a ~1K-packet runway —
// deep enough that a briefly descheduled worker does not stall the dispatch
// thread, shallow enough that Quiesce drains are short.
const laneRingSlots = 8

// ringSlot is one slab of the ring, padded to a cache line so the producer
// republishing slot i never invalidates the line a consumer is reading slot
// j's header from.
type ringSlot struct {
	b []*packet.Active
	_ [40]byte // 64 - sizeof(slice header)
}

// laneRing is the bounded SPSC ring of one lane. Field layout is the whole
// point: the producer-written cursor line and the consumer-written cursor
// line are separated by explicit padding, so the only cross-core traffic in
// steady state is the unavoidable one-line transfer per published batch.
type laneRing struct {
	slots [laneRingSlots]ringSlot

	_          [64]byte
	tail       atomic.Uint64 // batches published; written by the producer only
	pHeadCache uint64        // producer's last observed head (refresh on full)
	dispatched atomic.Uint64 // capsules published (quiesce + queue-depth gauge)

	_          [64]byte
	head       atomic.Uint64 // batches released; written by the consumer only
	cTailCache uint64        // consumer's last observed tail (refresh on empty)
	processed  atomic.Uint64 // capsules fully executed

	_      [64]byte
	closed atomic.Bool
}

// newLaneRing returns a ring whose slots each own a slab of cap batch.
func newLaneRing(batch int) *laneRing {
	g := &laneRing{}
	for i := range g.slots {
		g.slots[i].b = make([]*packet.Active, 0, batch)
	}
	return g
}

// acquire returns the lane-owned slab of the next unpublished slot, length
// zero, spinning (with scheduler yields) while the ring is full. Producer
// side only.
func (g *laneRing) acquire() []*packet.Active {
	t := g.tail.Load()
	for t-g.pHeadCache >= laneRingSlots {
		g.pHeadCache = g.head.Load()
		if t-g.pHeadCache >= laneRingSlots {
			sched()
		}
	}
	return g.slots[t&(laneRingSlots-1)].b[:0]
}

// publish hands a slab filled from acquire to the consumer. The slab's
// backing array is the slot's own storage, so publication is a slice-header
// store plus the atomic cursor advance.
func (g *laneRing) publish(b []*packet.Active) {
	t := g.tail.Load()
	g.slots[t&(laneRingSlots-1)].b = b
	g.dispatched.Add(uint64(len(b)))
	g.tail.Store(t + 1)
}

// next returns the oldest published batch without releasing its slot;
// ok=false when the ring is empty. Consumer side only.
func (g *laneRing) next() ([]*packet.Active, bool) {
	h := g.head.Load()
	if h == g.cTailCache {
		g.cTailCache = g.tail.Load()
		if h == g.cTailCache {
			return nil, false
		}
	}
	return g.slots[h&(laneRingSlots-1)].b, true
}

// release returns the slot of the batch obtained from the last next() to the
// producer, after the consumer is completely done with it (execution *and*
// accounting: the release store is the happens-before edge Quiesce relies on
// to read worker sinks).
func (g *laneRing) release(n int) {
	g.processed.Add(uint64(n))
	g.head.Store(g.head.Load() + 1)
}

// drained reports whether every published batch has been released.
func (g *laneRing) drained() bool { return g.head.Load() == g.tail.Load() }

// depth returns capsules published and not yet fully executed.
func (g *laneRing) depth() uint64 { return g.dispatched.Load() - g.processed.Load() }

// Worker idle policy: yield to the scheduler on a miss (essential when lanes
// outnumber cores — a spinning worker must not starve the dispatch thread),
// and after a run of consecutive misses, sleep briefly so idle lanes do not
// peg their cores between bursts.
const (
	laneIdleSpins = 256
	laneIdleSleep = 20 * time.Microsecond
)

// idleWait backs off after the n-th consecutive empty poll.
func idleWait(n int) {
	if n > laneIdleSpins {
		time.Sleep(laneIdleSleep)
	} else {
		sched()
	}
}
