package runtime

import (
	"testing"

	"activermt/internal/packet"
	"activermt/internal/telemetry"
)

// execFast runs one capsule through the fast path and flushes the sink, so
// counter state is comparable with the compat path after every packet.
func execFast(r *Runtime, a *packet.Active, res *ExecResult, sink *ExecSink) []*Output {
	r.ExecuteCapsule(a, res, sink)
	sink.Path.FlushInto(r)
	sink.Dev.FlushInto(r.Device())
	r.DeliverEvents(sink)
	return res.Outputs
}

// compareOutputs asserts the observable wire content of two output sets is
// identical: flags, args, surviving instructions, and routing verdicts.
func compareOutputs(t *testing.T, step string, want, got []*Output) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outputs vs %d", step, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Dropped != g.Dropped || w.ToSender != g.ToSender || w.DstSet != g.DstSet ||
			w.Dst != g.Dst || w.IsClone != g.IsClone || w.Executed != g.Executed ||
			w.Latency != g.Latency || w.Passes != g.Passes {
			t.Fatalf("%s output %d: envelope mismatch\nwant %+v\ngot  %+v", step, i, w, g)
		}
		wa, ga := w.Active, g.Active
		if wa.Header.Flags != ga.Header.Flags || wa.Header.FID != ga.Header.FID {
			t.Fatalf("%s output %d: header mismatch: %+v vs %+v", step, i, wa.Header, ga.Header)
		}
		if wa.Args != ga.Args {
			t.Fatalf("%s output %d: args %v vs %v", step, i, wa.Args, ga.Args)
		}
		wp, gp := wa.Program, ga.Program
		if (wp == nil) != (gp == nil) {
			t.Fatalf("%s output %d: program nil mismatch", step, i)
		}
		if wp != nil {
			if len(wp.Instrs) != len(gp.Instrs) {
				t.Fatalf("%s output %d: %d instrs vs %d", step, i, len(wp.Instrs), len(gp.Instrs))
			}
			for j := range wp.Instrs {
				if wp.Instrs[j] != gp.Instrs[j] {
					t.Fatalf("%s output %d instr %d: %v vs %v", step, i, j, wp.Instrs[j], gp.Instrs[j])
				}
			}
		}
	}
}

// TestExecuteCapsuleMatchesExecuteProgram drives the compat path and the
// fast path through the same packet sequence on two identical runtimes and
// requires identical wire outputs, runtime counters, and register state:
// hit/miss queries, a protection fault, unadmitted passthrough, quarantine
// drop, and revoked drop.
func TestExecuteCapsuleMatchesExecuteProgram(t *testing.T) {
	ra := testRuntime(t)
	rb := testRuntime(t)
	installCacheGrant(t, ra, 1, 0, 1024)
	installCacheGrant(t, rb, 1, 0, 1024)

	res := NewExecResult()
	sink := rb.NewExecSink()
	capsule := func(fid uint16, flags uint16, args [4]uint32) (*packet.Active, *packet.Active) {
		a := progPacket(fid, cacheQuery, args)
		b := progPacket(fid, cacheQuery.Clone(), args)
		a.Header.Flags |= flags
		b.Header.Flags |= flags
		return a, b
	}

	step := func(name string, fid uint16, flags uint16, args [4]uint32) {
		t.Helper()
		a, b := capsule(fid, flags, args)
		compareOutputs(t, name, ra.ExecuteProgram(a), execFast(rb, b, res, sink))
	}

	step("miss", 1, packet.FlagPreload, [4]uint32{7, 9, 100, 0})
	step("repeat", 1, packet.FlagPreload, [4]uint32{7, 9, 100, 0})
	step("fault", 1, packet.FlagPreload, [4]uint32{1, 2, 4000, 0}) // outside [0,1024)
	step("unadmitted", 9, 0, [4]uint32{})

	ra.Deactivate(1)
	rb.Deactivate(1)
	step("quarantined", 1, packet.FlagPreload, [4]uint32{1, 2, 100, 0})
	ra.Reactivate(1)
	rb.Reactivate(1)
	step("reactivated", 1, packet.FlagPreload, [4]uint32{7, 9, 100, 0})

	ra.RemoveGrant(1)
	rb.RemoveGrant(1)
	step("revoked", 1, packet.FlagPreload, [4]uint32{1, 2, 100, 0})

	// Counter and device state must agree exactly.
	if ra.ProgramsRun != rb.ProgramsRun || ra.Passthrough != rb.Passthrough ||
		ra.Faults != rb.Faults || ra.QuarantineDrops != rb.QuarantineDrops ||
		ra.RevokedDrops != rb.RevokedDrops {
		t.Fatalf("runtime counters diverged:\ncompat %d/%d/%d/%d/%d\nfast   %d/%d/%d/%d/%d",
			ra.ProgramsRun, ra.Passthrough, ra.Faults, ra.QuarantineDrops, ra.RevokedDrops,
			rb.ProgramsRun, rb.Passthrough, rb.Faults, rb.QuarantineDrops, rb.RevokedDrops)
	}
	da, db := ra.Device(), rb.Device()
	if da.PacketsIn != db.PacketsIn || da.PacketsDropped != db.PacketsDropped || da.Recirculations != db.Recirculations {
		t.Fatalf("device counters diverged: %d/%d/%d vs %d/%d/%d",
			da.PacketsIn, da.PacketsDropped, da.Recirculations,
			db.PacketsIn, db.PacketsDropped, db.Recirculations)
	}
	for s := 0; s < da.NumStages(); s++ {
		sa, sb := da.Stage(s), db.Stage(s)
		if sa.Executed != sb.Executed {
			t.Fatalf("stage %d executed %d vs %d", s, sa.Executed, sb.Executed)
		}
		if sa.Registers.Reads != sb.Registers.Reads || sa.Registers.Writes != sb.Registers.Writes ||
			sa.Registers.Faults != sb.Registers.Faults {
			t.Fatalf("stage %d register counters diverged", s)
		}
	}
}

// TestExecuteCapsuleZeroAlloc is the allocation gate for the packet hot
// path: once scratch buffers are warm, ExecuteCapsule must not allocate —
// on the clean path and on the fault path (buffered events reuse their
// capacity after delivery). The gate holds with telemetry both disabled and
// enabled: sharded counter adds, local-histogram observes, and flight-ring
// records are all allocation-free by construction.
func TestExecuteCapsuleZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name      string
		telemetry bool
	}{
		{name: "bare", telemetry: false},
		{name: "telemetry", telemetry: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := testRuntime(t)
			if tc.telemetry {
				r.AttachTelemetry(telemetry.NewRegistry())
			}
			installCacheGrant(t, r, 1, 0, 1024)
			res := NewExecResult()
			sink := r.NewExecSink()

			clean := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
			clean.Header.Flags |= packet.FlagPreload
			faulty := progPacket(1, cacheQuery, [4]uint32{7, 9, 4000, 0})
			faulty.Header.Flags |= packet.FlagPreload

			for i := 0; i < 64; i++ { // warm scratch buffers and event capacity
				r.ExecuteCapsule(clean, res, sink)
				r.ExecuteCapsule(faulty, res, sink)
				r.DeliverEvents(sink)
			}
			if avg := testing.AllocsPerRun(200, func() {
				r.ExecuteCapsule(clean, res, sink)
			}); avg != 0 {
				t.Fatalf("clean path allocates %.2f/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				r.ExecuteCapsule(faulty, res, sink)
				r.DeliverEvents(sink)
			}); avg != 0 {
				t.Fatalf("fault path allocates %.2f/op, want 0", avg)
			}
			if tc.telemetry && sink.FR != nil && sink.FR.Recorded() == 0 {
				t.Fatal("telemetry enabled but the lane flight recorder saw no samples")
			}
		})
	}
}

// TestExecResultPoolRoundTrip exercises the package pool discipline.
func TestExecResultPoolRoundTrip(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 1024)
	sink := r.NewExecSink()
	a := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
	a.Header.Flags |= packet.FlagPreload

	res := GetExecResult()
	r.ExecuteCapsule(a, res, sink)
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
	PutExecResult(res)
	res2 := GetExecResult()
	if len(res2.Outputs) != 0 {
		t.Fatal("pooled result returned with stale outputs")
	}
	PutExecResult(res2)
}
