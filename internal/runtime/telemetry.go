package runtime

import (
	"strconv"
	"sync/atomic"

	"activermt/internal/rmt"
	"activermt/internal/telemetry"
)

// Telemetry is the runtime's pre-registered metric handle set. Counters are
// fed from PathStats.FlushInto at the existing merge points (per packet on
// the compat path, at Stop for lanes) plus the inline compat-path sites;
// gauges describing committed control state (admission counts, per-FID
// epochs, per-stage occupancy) are updated exclusively inside publish()
// under the registry's commit seqlock, which is what makes a scrape
// epoch-consistent across a grant commit.
type Telemetry struct {
	reg *telemetry.Registry

	ProgramsRun, Passthrough, Faults *telemetry.Counter
	RecircThrottled, PrivSuppressed  *telemetry.Counter
	QuarantineDrops, RevokedDrops    *telemetry.Counter
	Specialized, PlanCompiles        *telemetry.Counter
	TableOps                         *telemetry.Counter

	// PacketLatFID is the per-FID packet-latency family, fed from the batch
	// path's bounded per-sink recorders (see latVec in specialize.go).
	PacketLatFID *telemetry.HistogramVec

	Admitted, Quarantined, Revoked *telemetry.Gauge
	SnapshotGen                    *telemetry.Gauge
	Epochs                         *telemetry.GaugeVec

	// laneSeq hands out flight-recorder lane ids: 0 is the compat path,
	// ExecSinks (one per lane worker) take 1, 2, ...
	laneSeq atomic.Int32
}

// Registry returns the registry the runtime metrics live in.
func (t *Telemetry) Registry() *telemetry.Registry { return t.reg }

// AttachTelemetry registers the runtime's and its device's metric set in
// reg and returns the handle set. It also installs the grant-liveness
// resolver for flight-recorder entries and a flight recorder for the
// single-threaded execution path, and republishes the control snapshot so
// every gauge starts populated. Attach once, before traffic starts.
func (r *Runtime) AttachTelemetry(reg *telemetry.Registry) *Telemetry {
	t := &Telemetry{
		reg:             reg,
		ProgramsRun:     reg.NewCounter("activermt_runtime_programs_run_total", "capsules executed through the pipeline"),
		Passthrough:     reg.NewCounter("activermt_runtime_passthrough_total", "capsules of unadmitted FIDs forwarded unexecuted"),
		Faults:          reg.NewCounter("activermt_runtime_faults_total", "capsules that raised a protection fault"),
		RecircThrottled: reg.NewCounter("activermt_runtime_recirc_throttled_total", "capsules dropped by the recirculation fairness controller"),
		PrivSuppressed:  reg.NewCounter("activermt_runtime_priv_suppressed_total", "privileged instructions suppressed by the privilege table"),
		QuarantineDrops: reg.NewCounter("activermt_runtime_quarantine_drops_total", "capsules dropped while their FID was deactivated"),
		RevokedDrops:    reg.NewCounter("activermt_runtime_revoked_drops_total", "capsules dropped because their grant was revoked"),
		Specialized:     reg.NewCounter("activermt_runtime_specialized_total", "capsules executed through a compiled plan"),
		PlanCompiles:    reg.NewCounter("activermt_runtime_plan_compiles_total", "program-to-plan compilations performed"),
		TableOps:        reg.NewCounter("activermt_runtime_table_ops_total", "cumulative control-plane table update operations"),
		PacketLatFID:    reg.NewHistogramVec("activermt_packet_latency_fid_ns", "modeled packet latency per FID (batch path; bounded cardinality)", "fid"),
		Admitted:        reg.NewGauge("activermt_runtime_admitted", "currently admitted FIDs"),
		Quarantined:     reg.NewGauge("activermt_runtime_quarantined", "FIDs currently deactivated for reallocation"),
		Revoked:         reg.NewGauge("activermt_runtime_revoked", "FIDs whose grant was revoked and not re-admitted"),
		SnapshotGen:     reg.NewGauge("activermt_runtime_snapshot_gen", "generation of the published control snapshot"),
		Epochs:          reg.NewGaugeVec("activermt_grant_epoch", "current grant epoch per FID", "fid"),
	}
	r.dev.AttachTelemetry(rmt.NewTelemetry(reg, r.dev.NumStages()))

	// Lane queue depth and lane count read the active Lanes instance (if
	// any) through an atomic pointer: atomic loads only, as GaugeFunc
	// requires.
	reg.NewGaugeFunc("activermt_lane_queue_depth", "capsules dispatched to lanes and not yet processed", func() float64 {
		if l := r.telLanes.Load(); l != nil {
			return float64(l.QueueDepth())
		}
		return 0
	})
	reg.NewGaugeFunc("activermt_lanes", "active execution lanes (0: single-threaded mode)", func() float64 {
		if l := r.telLanes.Load(); l != nil {
			return float64(l.n)
		}
		return 0
	})

	// A flight entry is live iff its (FID, epoch) is still the currently
	// installed grant in the published control view — an atomic load, so
	// the scrape goroutine may resolve it at snapshot time.
	reg.SetLiveness(func(fid uint16, epoch uint8) bool {
		cv := r.view()
		return cv.admitted[fid] && cv.epochs[fid] == epoch
	})

	r.flight = telemetry.NewFlightRecorder(0, telemetry.DefaultFlightSize, telemetry.DefaultFlightPeriod)
	reg.AttachFlight(r.flight)

	r.tel = t
	r.publish() // populate the gauges under a first commit
	return t
}

// Telemetry returns the attached handle set (nil when disabled).
func (r *Runtime) Telemetry() *Telemetry { return r.tel }

// syncGauges updates every committed-control-state gauge from the view just
// published. Called only from publish(), inside the commit window.
func (r *Runtime) syncGauges(v *ctrlView) {
	t := r.tel
	t.Admitted.Set(int64(len(v.admitted)))
	t.Quarantined.Set(int64(len(v.quarantined)))
	t.Revoked.Set(int64(len(v.revoked)))
	t.SnapshotGen.Set(int64(v.gen))
	for f, e := range v.epochs {
		t.Epochs.With(strconv.FormatUint(uint64(f), 10)).Set(int64(e))
	}
	r.dev.SyncOccupancy()
}

// addTableOps mirrors a TableOps increment into telemetry.
func (r *Runtime) addTableOps(n uint64) {
	if t := r.tel; t != nil {
		t.TableOps.Add(n)
	}
}

// flightRecord writes one entry into the compat-path recorder (single-
// threaded callers only); refusals force-record, everything else samples.
func (r *Runtime) flightRecord(forced bool, e telemetry.FlightEntry) {
	fr := r.flight
	if fr == nil {
		return
	}
	if fr.ShouldSample() || forced {
		fr.Record(e)
	}
}
