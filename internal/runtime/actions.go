// Package runtime implements the ActiveRMT switch runtime: the shared
// "P4 program" that turns a generic RMT device into an active-packet
// interpreter (Section 3 of the paper). It installs one action per opcode in
// every stage, enforces per-FID memory protection through the stage TCAMs,
// applies runtime address translation (ADDR_MASK/ADDR_OFFSET), manages FID
// admission and quarantine state, and converts between active packets and
// PHVs.
package runtime

import (
	"activermt/internal/isa"
	"activermt/internal/rmt"
)

// installActions wires the full instruction set into the device. Every
// opcode is available in every stage (Section 3.1), which is what gives
// programs their mutant flexibility. The runtime receiver supplies the
// control-plane state some actions consult (mirror sessions).
func (r *Runtime) installActions(d *rmt.Device) {
	acts := map[isa.Opcode]rmt.Action{
		isa.OpNop: func(ctx *rmt.Ctx, in isa.Instruction) {},

		// Data copying.
		isa.OpMbrLoad:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR = data(ctx, in) },
		isa.OpMbrStore: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.Data[in.Operand%4] = ctx.PHV.MBR },
		isa.OpMbr2Load: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR2 = data(ctx, in) },
		isa.OpMarLoad:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR = data(ctx, in) },

		isa.OpCopyMbr2Mbr: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR2 = ctx.PHV.MBR },
		isa.OpCopyMbrMbr2: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR = ctx.PHV.MBR2 },
		isa.OpCopyMarMbr:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR = ctx.PHV.MBR },
		isa.OpCopyMbrMar:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR = ctx.PHV.MAR },
		isa.OpCopyHashdataMbr: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.HashData[in.Operand%rmt.NumHashWords] = ctx.PHV.MBR
		},
		isa.OpCopyHashdataMbr2: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.HashData[in.Operand%rmt.NumHashWords] = ctx.PHV.MBR2
		},
		isa.OpHashdata5Tuple: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.HashData = ctx.PHV.TupleWords },

		// Data manipulation.
		isa.OpMbrAddMbr2:    func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR += ctx.PHV.MBR2 },
		isa.OpMarAddMbr:     func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR += ctx.PHV.MBR },
		isa.OpMarAddMbr2:    func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR += ctx.PHV.MBR2 },
		isa.OpMarMbrAddMbr2: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR = ctx.PHV.MBR + ctx.PHV.MBR2 },
		isa.OpMbrSubMbr2:    func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR -= ctx.PHV.MBR2 },
		isa.OpBitAndMarMbr:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MAR &= ctx.PHV.MBR },
		isa.OpBitOrMbrMbr2:  func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR |= ctx.PHV.MBR2 },
		isa.OpMbrEqualsMbr2: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR ^= ctx.PHV.MBR2 },
		isa.OpMbrEqualsData: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR ^= data(ctx, in) },
		isa.OpMax: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR2 > ctx.PHV.MBR {
				ctx.PHV.MBR = ctx.PHV.MBR2
			}
		},
		isa.OpMin: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR2 < ctx.PHV.MBR {
				ctx.PHV.MBR = ctx.PHV.MBR2
			}
		},
		isa.OpRevMin: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR < ctx.PHV.MBR2 {
				ctx.PHV.MBR2 = ctx.PHV.MBR
			}
		},
		isa.OpSwapMbrMbr2: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.MBR, ctx.PHV.MBR2 = ctx.PHV.MBR2, ctx.PHV.MBR
		},
		isa.OpMbrNot: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.MBR = ^ctx.PHV.MBR },

		// Control flow.
		isa.OpReturn: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.Complete = true },
		isa.OpCRet: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR != 0 {
				ctx.PHV.Complete = true
			}
		},
		isa.OpCRetI: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR == 0 {
				ctx.PHV.Complete = true
			}
		},
		isa.OpCJump: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR != 0 {
				ctx.PHV.DisabledUntil = in.Operand
			}
		},
		isa.OpCJumpI: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR == 0 {
				ctx.PHV.DisabledUntil = in.Operand
			}
		},
		isa.OpUJump: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.DisabledUntil = in.Operand },

		// Memory access: protection first, then the stateful-ALU
		// micro-program. MEM_READ/MEM_WRITE advance MAR (Section 3.4).
		// Accesses use the non-counting register accessors and count
		// through the Ctx sink so lanes never race on the shared counters.
		isa.OpMemRead: memAction(func(ctx *rmt.Ctx, in isa.Instruction, addr uint32) {
			ctx.Stats.RegReads[ctx.StageIdx]++
			ctx.PHV.MBR = ctx.Stage.Registers.Get(addr)
			ctx.PHV.MAR++
		}),
		isa.OpMemWrite: memAction(func(ctx *rmt.Ctx, in isa.Instruction, addr uint32) {
			ctx.Stats.RegWrites[ctx.StageIdx]++
			ctx.Stage.Registers.Set(addr, ctx.PHV.MBR)
			ctx.PHV.MAR++
		}),
		isa.OpMemIncrement: memAction(func(ctx *rmt.Ctx, in isa.Instruction, addr uint32) {
			inc := uint32(in.Operand)
			if inc == 0 {
				inc = 1
			}
			ctx.Stats.RegWrites[ctx.StageIdx]++
			ctx.PHV.MBR = ctx.Stage.Registers.Add(addr, inc)
		}),
		isa.OpMemMinRead: memAction(func(ctx *rmt.Ctx, in isa.Instruction, addr uint32) {
			ctx.Stats.RegReads[ctx.StageIdx]++
			v := ctx.Stage.Registers.Get(addr)
			if v < ctx.PHV.MBR {
				ctx.PHV.MBR = v
			}
		}),
		isa.OpMemMinReadInc: memAction(func(ctx *rmt.Ctx, in isa.Instruction, addr uint32) {
			ctx.Stats.RegWrites[ctx.StageIdx]++
			ctx.PHV.MBR = ctx.Stage.Registers.Add(addr, 1)
			if ctx.PHV.MBR < ctx.PHV.MBR2 {
				ctx.PHV.MBR2 = ctx.PHV.MBR
			}
		}),

		// Packet forwarding.
		isa.OpDrop: func(ctx *rmt.Ctx, in isa.Instruction) { ctx.PHV.Dropped = true },
		isa.OpFork: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.RequestFork()
			// A nonzero operand names a mirror session: the clone is
			// steered to the session's egress port if one is installed.
			if in.Operand != 0 {
				if port, ok := r.MirrorSession(ctx.PHV.FID, in.Operand); ok {
					ctx.PHV.SetForkDst(port)
				}
			}
		},
		isa.OpSetDst: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.DstSet = true
			ctx.PHV.Dst = ctx.PHV.MBR
			if ctx.StageIdx >= ctx.Dev.NumIngress() {
				ctx.PHV.MarkRTSAtEgress()
			}
		},
		isa.OpRts: func(ctx *rmt.Ctx, in isa.Instruction) { rts(ctx) },
		isa.OpCRts: func(ctx *rmt.Ctx, in isa.Instruction) {
			if ctx.PHV.MBR != 0 {
				rts(ctx)
			}
		},

		// Address translation and hashing. Translation entries come from
		// the published stage view, never the mutable builder map.
		isa.OpAddrMask: func(ctx *rmt.Ctx, in isa.Instruction) {
			if t, ok := ctx.View.Translate(ctx.PHV.FID); ok {
				ctx.PHV.MAR &= t.Mask
			}
		},
		isa.OpAddrOffset: func(ctx *rmt.Ctx, in isa.Instruction) {
			if t, ok := ctx.View.Translate(ctx.PHV.FID); ok {
				ctx.PHV.MAR += t.Offset
			}
		},
		isa.OpHash: func(ctx *rmt.Ctx, in isa.Instruction) {
			ctx.PHV.MAR = ctx.Dev.Hash(ctx.StageIdx, in.Operand, ctx.PHV.HashData)
		},
	}
	for op, fn := range acts {
		d.SetAction(op, fn)
	}
}

// data reads the operand-selected argument field.
func data(ctx *rmt.Ctx, in isa.Instruction) uint32 {
	return ctx.PHV.Data[in.Operand%4]
}

func rts(ctx *rmt.Ctx) {
	ctx.PHV.ToSender = true
	if ctx.StageIdx >= ctx.Dev.NumIngress() {
		ctx.PHV.MarkRTSAtEgress()
	}
}

// memAction wraps a register micro-program with TCAM protection: a memory
// access whose MAR falls outside the FID's installed region in this stage is
// a fault, and the packet is dropped ("packets that fail execution are
// dropped", Section 4.3). The protection check and fault attribution read
// the published stage view, so the packet sees one consistent protection
// state for its whole traversal even while the controller mutates tables.
func memAction(body func(ctx *rmt.Ctx, in isa.Instruction, addr uint32)) rmt.Action {
	return func(ctx *rmt.Ctx, in isa.Instruction) {
		addr := ctx.PHV.MAR
		if !ctx.View.Allowed(ctx.PHV.FID, addr) || !ctx.Stage.Registers.InRange(addr) {
			ctx.Stats.RegFaults[ctx.StageIdx]++
			ctx.PHV.Dropped = true
			ctx.PHV.Faulted = true
			ctx.PHV.FaultAddr = addr
			ctx.PHV.FaultStage = ctx.StageIdx
			ctx.PHV.FaultOwner, ctx.PHV.FaultOwned = ctx.View.Owner(addr)
			return
		}
		body(ctx, in, addr)
	}
}
