package runtime

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
	"activermt/internal/telemetry"
)

// AccessGrant places one memory access of an admitted program: the logical
// stage the access executes in (which fixes the physical stage) and the
// granted word region [Lo, Hi) in that stage's register array.
type AccessGrant struct {
	Logical int
	Lo, Hi  uint32
}

// Grant is the full data-plane footprint of one admitted application
// instance, as computed by the allocator for the selected mutant.
type Grant struct {
	FID      uint16
	Accesses []AccessGrant
}

// grantRecord remembers what was installed for a FID so it can be removed.
type grantRecord struct {
	protStages  []int // physical stages holding a TCAM region
	xlateStages []int // physical stages holding a translate entry
}

// Runtime is the ActiveRMT switch runtime: a configured RMT device plus the
// FID admission, protection, and translation state the shared P4 program
// maintains.
type Runtime struct {
	dev *rmt.Device

	admitted    map[uint16]*grantRecord
	quarantined map[uint16]bool
	// epochs is the per-FID grant epoch: bumped on every grant install so
	// capsules stamped against an older grant are detectably stale. Entries
	// survive RemoveGrant so a re-admitted FID continues the sequence
	// rather than reissuing epochs an attacker may have observed.
	epochs map[uint16]uint8
	// revoked marks FIDs whose grant was removed: their packets hard-drop
	// instead of passing through, so revoked tenants cannot keep using the
	// pipeline as a (stateless) forwarding service.
	revoked map[uint16]bool

	guard GuardHook

	// Section 7 extensions (see extensions.go).
	recircPolicy RecircPolicy
	recircNow    func() time.Duration
	recircMu     sync.Mutex
	recirc       map[uint16]*recircState
	privilege    map[uint16]uint8
	mirror       map[uint32]uint32

	// snap is the published control-state snapshot the packet path and
	// ingress guard read (see snapshot.go); snapGen numbers publications.
	snap    atomic.Pointer[ctrlView]
	snapGen uint64

	// passLat caches the device's per-pass latency so the hot path does not
	// copy the whole Config struct per packet. Immutable after New.
	passLat time.Duration

	// Specialization state (see specialize.go): planTab is the published
	// compiled-plan table for the current snapshot pair, planMu serializes
	// plan inserts against table resets, specOff disables the specialized
	// path, and planCompiles counts compilations.
	planTab      atomic.Pointer[planTable]
	planMu       sync.Mutex
	specOff      atomic.Bool
	planCompiles atomic.Uint64

	// Telemetry wiring (nil when disabled; see telemetry.go). flight is
	// the single-threaded path's capsule recorder; telLanes exposes the
	// active Lanes instance to the queue-depth gauge.
	tel      *Telemetry
	flight   *telemetry.FlightRecorder
	telLanes atomic.Pointer[Lanes]

	// Stats for the experiment harness.
	ProgramsRun, Passthrough, Faults uint64
	RecircThrottled, PrivSuppressed  uint64
	QuarantineDrops, RevokedDrops    uint64
	SpecializedRuns                  uint64 // capsules executed through a compiled plan
	TableOps                         uint64 // cumulative table update operations
}

// GuardHook receives data-plane isolation events as they happen. The runtime
// deliberately depends only on this narrow interface (internal/guard
// implements it) so the execute path stays free of policy.
type GuardHook interface {
	// MemFault reports a protection fault: fid touched addr in the given
	// physical stage; owner/owned identify the tenant whose installed
	// region contains addr, when there is one.
	MemFault(fid uint16, stage int, addr uint32, owner uint16, owned bool)
	// RecircThrottled reports a packet dropped by the recirculation
	// fairness controller.
	RecircThrottled(fid uint16)
	// RevokedDrop reports a packet dropped because its FID's grant was
	// revoked.
	RevokedDrop(fid uint16)
}

// SetGuardHook installs the isolation-event sink (nil disables reporting).
func (r *Runtime) SetGuardHook(h GuardHook) { r.guard = h }

// New builds a device from cfg and installs the interpreter in it.
func New(cfg rmt.Config) (*Runtime, error) {
	dev, err := rmt.New(cfg)
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		dev:         dev,
		admitted:    make(map[uint16]*grantRecord),
		quarantined: make(map[uint16]bool),
		epochs:      make(map[uint16]uint8),
		revoked:     make(map[uint16]bool),
		passLat:     dev.Config().PassLatency,
	}
	r.installActions(dev)
	r.publish()
	return r, nil
}

// Device exposes the underlying device (for controllers and tests).
func (r *Runtime) Device() *rmt.Device { return r.dev }

// Admitted reports whether fid has been admitted, per the published
// control snapshot (the same state the packet path executes against).
func (r *Runtime) Admitted(fid uint16) bool { return r.view().admitted[fid] }

// Quarantined reports whether fid's packets are currently deactivated.
func (r *Runtime) Quarantined(fid uint16) bool { return r.view().quarantined[fid] }

// Revoked reports whether fid once held a grant that has been removed (and
// has not been re-admitted since).
func (r *Runtime) Revoked(fid uint16) bool { return r.view().revoked[fid] }

// Epoch returns fid's current grant epoch (0: no grant ever installed).
// Allocation responses carry it to the client, program capsules echo it
// back, and the guard drops capsules whose echo is stale.
func (r *Runtime) Epoch(fid uint16) uint8 { return r.view().epochs[fid] }

// NextEpoch returns the epoch the next grant installation will assign —
// what the controller stamps into reallocation notices sent before the
// install lands.
func (r *Runtime) NextEpoch(fid uint16) uint8 { return nextEpoch(r.epochs[fid]) }

// nextEpoch advances a 7-bit epoch, skipping 0 so "no epoch" stays
// unambiguous.
func nextEpoch(e uint8) uint8 {
	if e >= packet.EpochMax {
		return 1
	}
	return e + 1
}

func (r *Runtime) bumpEpoch(fid uint16) {
	r.epochs[fid] = nextEpoch(r.epochs[fid])
	delete(r.revoked, fid)
}

// Deactivate suspends execution of fid's programs during a reallocation so
// clients observe a consistent memory snapshot (Section 4.3). Packets still
// forward, unexecuted.
func (r *Runtime) Deactivate(fid uint16) {
	r.quarantined[fid] = true
	r.TableOps++
	r.addTableOps(1)
	r.publish()
}

// Reactivate resumes execution of fid's programs.
func (r *Runtime) Reactivate(fid uint16) {
	delete(r.quarantined, fid)
	r.TableOps++
	r.addTableOps(1)
	r.publish()
}

// InstallGrant installs (or replaces) the protection and translation entries
// for a grant, zeroes the granted regions, and admits the FID. It returns
// the number of table operations performed, the currency of the
// provisioning-time model (Figure 8a: provisioning is dominated by table
// updates).
func (r *Runtime) InstallGrant(g Grant) (int, error) {
	ops := 0
	if old, ok := r.admitted[g.FID]; ok {
		ops += r.removeRecord(g.FID, old)
	}
	// Every return path below republishes: the TCAM and translation tables
	// have been touched (install or rollback), and packets must only ever
	// execute against a fully committed view.
	defer func() {
		r.dev.RebuildView()
		r.publish()
	}()
	rec := &grantRecord{}
	prevLogical := -1
	for _, a := range g.Accesses {
		if a.Lo >= a.Hi {
			return ops, fmt.Errorf("runtime: empty grant region [%d,%d)", a.Lo, a.Hi)
		}
		phys := r.dev.PhysicalStage(a.Logical)
		st := r.dev.Stage(phys)
		if !st.Registers.InRange(a.Hi - 1) {
			return ops, fmt.Errorf("runtime: grant [%d,%d) exceeds stage memory", a.Lo, a.Hi)
		}
		region := rmt.Region{FID: g.FID, Lo: a.Lo, Hi: a.Hi}
		if err := st.Prot.Install(region); err != nil {
			// Roll back everything installed so far.
			r.removeRecord(g.FID, rec)
			return ops, err
		}
		ops += region.Cost()
		rec.protStages = append(rec.protStages, phys)
		if err := st.Registers.Zero(a.Lo, a.Hi); err != nil {
			r.removeRecord(g.FID, rec)
			return ops, err
		}

		// Translation entries for this access cover the logical window
		// between the previous access and this one, so any
		// ADDR_MASK/ADDR_OFFSET the program executes there targets this
		// access's region (Section 3.2).
		tr := translateFor(a)
		for l := prevLogical + 1; l < a.Logical; l++ {
			p := r.dev.PhysicalStage(l)
			r.dev.Stage(p).SetTranslate(g.FID, tr)
			rec.xlateStages = append(rec.xlateStages, p)
			ops++
		}
		prevLogical = a.Logical
	}
	r.admitted[g.FID] = rec
	r.bumpEpoch(g.FID)
	r.TableOps += uint64(ops) + 1 // +1 for the admission gate entry
	r.addTableOps(uint64(ops) + 1)
	return ops + 1, nil
}

// translateFor derives the mask/offset pair for a region: the mask is the
// largest power-of-two window that fits the region (mask-based translation
// needs power-of-two windows; arbitrary-size regions use the floor), the
// offset is the region base.
func translateFor(a AccessGrant) rmt.Translate {
	size := a.Hi - a.Lo
	if size == 0 {
		return rmt.Translate{}
	}
	k := bits.Len32(size) - 1
	return rmt.Translate{Mask: 1<<k - 1, Offset: a.Lo}
}

// AdmitStateless admits a FID with no memory grant — for programs that keep
// no switch state (e.g. the NOP latency probes of Figure 8b).
func (r *Runtime) AdmitStateless(fid uint16) {
	if _, ok := r.admitted[fid]; !ok {
		r.admitted[fid] = &grantRecord{}
		r.bumpEpoch(fid)
		r.TableOps++
		r.addTableOps(1)
		r.publish()
	}
}

// RemoveGrant removes all state for fid and returns the table operations
// performed.
func (r *Runtime) RemoveGrant(fid uint16) int {
	rec, ok := r.admitted[fid]
	if !ok {
		return 0
	}
	ops := r.removeRecord(fid, rec) + 1 // +1 for the admission gate entry
	delete(r.admitted, fid)
	delete(r.quarantined, fid)
	r.revoked[fid] = true
	r.TableOps += uint64(ops)
	r.addTableOps(uint64(ops))
	r.dev.RebuildView()
	r.publish()
	return ops
}

func (r *Runtime) removeRecord(fid uint16, rec *grantRecord) int {
	ops := 0
	for _, p := range rec.protStages {
		ops += r.dev.Stage(p).Prot.Remove(fid)
	}
	for _, p := range rec.xlateStages {
		ops += r.dev.Stage(p).ClearTranslate(fid)
	}
	rec.protStages = rec.protStages[:0]
	rec.xlateStages = rec.xlateStages[:0]
	return ops
}

// Snapshot reads fid's region in the given physical stage via the
// control-plane register API (one of the paper's two state-extraction
// paths).
func (r *Runtime) Snapshot(fid uint16, phys int) ([]uint32, rmt.Region, error) {
	st := r.dev.Stage(phys)
	reg, ok := st.Prot.Region(fid)
	if !ok {
		return nil, rmt.Region{}, fmt.Errorf("runtime: fid %d has no region in stage %d", fid, phys)
	}
	words, err := st.Registers.Snapshot(reg.Lo, reg.Hi)
	return words, reg, err
}

// RestoreRegion writes a captured register image into fid's currently
// installed region in the given physical stage — the restore half of the
// memsync snapshot->restore protocol, used by online defragmentation to
// carry tenant state across a migration. Words beyond the region are
// truncated (a migrated region never grows, but a partial image must not
// escape the grant). Restore updates parity, so migrated state does not
// trip the corruption sweep. Returns the words written.
func (r *Runtime) RestoreRegion(fid uint16, phys int, words []uint32) (int, error) {
	st := r.dev.Stage(phys)
	reg, ok := st.Prot.Region(fid)
	if !ok {
		return 0, fmt.Errorf("runtime: fid %d has no region in stage %d", fid, phys)
	}
	n := len(words)
	if max := int(reg.Hi - reg.Lo); n > max {
		n = max
	}
	if err := st.Registers.Restore(reg.Lo, words[:n]); err != nil {
		return 0, err
	}
	return n, nil
}

// Output is one packet emitted by program execution.
type Output struct {
	Active   *packet.Active
	ToSender bool
	DstSet   bool
	Dst      uint32
	Dropped  bool
	IsClone  bool
	Executed bool // false when the program was passed through unexecuted
	Latency  time.Duration
	Passes   int
}

// ExecuteProgram runs a decoded program packet through the pipeline and
// returns the resulting output packets (primary first, then FORK clones).
// Programs whose FID was never admitted pass through unexecuted, exactly as
// a table miss would behave on the real switch. Programs whose FID was
// revoked — or is quarantined during a reallocation (FlagMemSync excepted) —
// hard-drop: a tenant stripped of its grant must not retain pipeline access,
// and a deactivated tenant's packets must not leak around the snapshot.
func (r *Runtime) ExecuteProgram(a *packet.Active) []*Output {
	if a.Program == nil {
		return []*Output{{Active: a, Latency: r.dev.Config().PassLatency}}
	}
	fid := a.Header.FID
	memsync := a.Header.Flags&packet.FlagMemSync != 0
	if r.Revoked(fid) {
		r.RevokedDrops++
		if t := r.tel; t != nil {
			t.RevokedDrops.Inc()
		}
		r.flightRecord(true, telemetry.FlightEntry{FID: fid, Epoch: r.Epoch(fid), Verdict: telemetry.VerdictRevoked})
		if r.guard != nil {
			r.guard.RevokedDrop(fid)
		}
		return []*Output{r.hardDrop(a)}
	}
	if !r.Admitted(fid) {
		r.Passthrough++
		if t := r.tel; t != nil {
			t.Passthrough.Inc()
		}
		r.flightRecord(false, telemetry.FlightEntry{FID: fid, Verdict: telemetry.VerdictPassthrough})
		return []*Output{{Active: a, Latency: r.dev.Config().PassLatency}}
	}
	if r.Quarantined(fid) && !memsync {
		r.QuarantineDrops++
		if t := r.tel; t != nil {
			t.QuarantineDrops.Inc()
		}
		r.flightRecord(true, telemetry.FlightEntry{FID: fid, Epoch: r.Epoch(fid), Verdict: telemetry.VerdictQuarantined})
		return []*Output{r.hardDrop(a)}
	}
	if !r.RecircAllowed(fid, a.Program.Len()) {
		// The recirculation fairness controller polices bandwidth
		// inflation (Section 7.2): over-budget programs are dropped.
		r.flightRecord(true, telemetry.FlightEntry{FID: fid, Epoch: r.Epoch(fid), Verdict: telemetry.VerdictThrottled})
		if r.guard != nil {
			r.guard.RecircThrottled(fid)
		}
		return []*Output{r.hardDrop(a)}
	}
	r.ProgramsRun++
	if t := r.tel; t != nil {
		t.ProgramsRun.Inc()
	}

	phv := &rmt.PHV{
		FID:    a.Header.FID,
		Data:   a.Args,
		Instrs: append([]isa.Instruction(nil), a.Program.Instrs...),
	}
	if a.Header.Flags&packet.FlagPreload != 0 {
		phv.MAR = a.Args[2]
		phv.MBR = a.Args[0]
	}
	r.applyPrivilege(a.Header.FID, phv)
	if tup, ok := packet.ParseFiveTuple(a.Payload); ok {
		w := tup.Words()
		copy(phv.TupleWords[:], w)
	}

	outs := r.dev.Exec(phv)
	results := make([]*Output, 0, len(outs))
	for _, p := range outs {
		if p.Faulted {
			r.Faults++
			if t := r.tel; t != nil {
				t.Faults.Inc()
			}
			if r.guard != nil {
				r.guard.MemFault(fid, p.FaultStage, p.FaultAddr, p.FaultOwner, p.FaultOwned)
			}
		}
		results = append(results, r.encodeOutput(a, p))
	}
	if r.flight != nil {
		p := outs[0]
		v := telemetry.VerdictExecuted
		if p.Dropped {
			v = telemetry.VerdictDropped
		}
		r.flightRecord(p.Faulted || p.Dropped, telemetry.FlightEntry{
			FID: fid, Epoch: r.Epoch(fid), Verdict: v,
			Stages: uint16(p.StagesRun), Passes: uint8(p.Passes),
			Faulted: p.Faulted, Addr: p.MAR, FaultAddr: p.FaultAddr,
		})
	}
	return results
}

// hardDrop builds the dropped-with-FlagFailed output for packets refused
// before execution (revoked, quarantined, or recirc-throttled FIDs).
func (r *Runtime) hardDrop(a *packet.Active) *Output {
	out := &Output{Active: a, Dropped: true, Latency: r.dev.Config().PassLatency}
	out.Active.Header.Flags |= packet.FlagFailed
	return out
}

// encodeOutput rebuilds an active packet from a post-execution PHV,
// shrinking executed instruction headers unless the program opted out
// (Section 3.1's packet-shrinking optimization).
func (r *Runtime) encodeOutput(in *packet.Active, p *rmt.PHV) *Output {
	hdr := in.Header
	hdr.Flags |= packet.FlagFromSwch
	if p.Complete {
		hdr.Flags |= packet.FlagDone
	}
	if p.ToSender {
		hdr.Flags |= packet.FlagRTS
	}
	if p.Dropped {
		hdr.Flags |= packet.FlagFailed
	}

	prog := &isa.Program{Name: in.Program.Name}
	noShrink := in.Header.Flags&packet.FlagNoShrink != 0
	for _, instr := range p.Instrs {
		if instr.Executed && !noShrink {
			continue
		}
		prog.Instrs = append(prog.Instrs, instr)
	}

	out := &packet.Active{
		Header:  hdr,
		Args:    p.Data,
		Program: prog,
		Payload: in.Payload,
	}
	out.Header.SetType(packet.TypeProgram)
	return &Output{
		Active:   out,
		ToSender: p.ToSender,
		DstSet:   p.DstSet,
		Dst:      p.Dst,
		Dropped:  p.Dropped,
		IsClone:  p.IsClone,
		Executed: true,
		Latency:  p.Latency,
		Passes:   p.Passes,
	}
}

// RegionFor returns fid's installed region in a physical stage (for tests
// and the controller).
func (r *Runtime) RegionFor(fid uint16, phys int) (rmt.Region, bool) {
	return r.dev.Stage(phys).Prot.Region(fid)
}

// AdmittedFIDs returns every admitted FID in ascending order — the
// control-plane census a restarted controller starts from.
func (r *Runtime) AdmittedFIDs() []uint16 {
	out := make([]uint16, 0, len(r.admitted))
	for fid := range r.admitted {
		out = append(out, fid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstalledRegions reads fid's protected regions out of every stage's TCAM:
// the switch-resident allocation state that survives a controller crash.
func (r *Runtime) InstalledRegions(fid uint16) map[int]rmt.Region {
	out := map[int]rmt.Region{}
	for s := 0; s < r.dev.NumStages(); s++ {
		if reg, ok := r.dev.Stage(s).Prot.Region(fid); ok {
			out[s] = reg
		}
	}
	return out
}

// Corruption is one parity-sweep hit: a word whose SRAM content no longer
// matches its parity bit, attributed to the owning FID when the address
// falls inside a protected region.
type Corruption struct {
	Stage int
	Addr  uint32
	FID   uint16
	Owned bool
}

// SweepCorruption runs the parity scrub pass over every stage's register
// array and returns the corrupted words found, in (stage, addr) order.
func (r *Runtime) SweepCorruption() []Corruption {
	var out []Corruption
	for s := 0; s < r.dev.NumStages(); s++ {
		st := r.dev.Stage(s)
		for _, addr := range st.Registers.SweepParity(0, uint32(st.Registers.Len())) {
			c := Corruption{Stage: s, Addr: addr}
			c.FID, c.Owned = st.Prot.OwnerOf(addr)
			out = append(out, c)
		}
	}
	return out
}

// ScrubWord acknowledges a corrupted word so subsequent sweeps stop
// reporting it; the caller is responsible for quarantining the block.
func (r *Runtime) ScrubWord(phys int, addr uint32) {
	r.dev.Stage(phys).Registers.Scrub(addr)
}
