package runtime

import (
	"sync"
	"time"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
	"activermt/internal/telemetry"
)

// This file is the allocation-free packet hot path. ExecuteCapsule performs
// the same admission checks, PHV construction, pipeline execution, and
// output encoding as ExecuteProgram, but:
//
//   - all per-packet state lives in a reusable ExecResult (pooled PHV,
//     pooled output capsules, reusable device-output buffer), so the
//     steady-state loop performs zero heap allocations;
//   - control state is read exclusively from the published snapshots
//     (ctrlView + rmt.PipeView), never from the mutable builder maps;
//   - counters accumulate into a caller-owned ExecSink and guard events are
//     buffered there, so N lanes can execute concurrently and merge their
//     accounting under a happens-before edge instead of racing.
//
// ExecuteProgram remains the single-threaded compatibility entry point with
// identical observable behavior; the netsim experiments keep using it so
// their outputs stay byte-identical.

// GuardEventKind discriminates buffered guard notifications.
type GuardEventKind uint8

// Guard event kinds, mirroring the GuardHook methods.
const (
	GuardEventMemFault GuardEventKind = iota
	GuardEventRecircThrottled
	GuardEventRevokedDrop
)

// GuardEvent is one buffered GuardHook notification. Lanes deliver their
// buffers on the dispatch thread (at Flush/Stop) so guard state — which is
// not thread-safe — is only ever touched from one goroutine.
type GuardEvent struct {
	Kind  GuardEventKind
	FID   uint16
	Stage int
	Addr  uint32
	Owner uint16
	Owned bool
}

// PathStats mirrors the Runtime's execution counters; the hot path counts
// here and the owner flushes into the Runtime fields under exclusion.
// RecircThrottled is absent: RecircAllowed already updates it atomically.
type PathStats struct {
	ProgramsRun, Passthrough, Faults uint64
	PrivSuppressed                   uint64
	QuarantineDrops, RevokedDrops    uint64
	Specialized                      uint64
}

// FlushInto drains the counters into the runtime's legacy fields (mirroring
// into telemetry when attached) and resets them. Callers must hold exclusive
// access to the runtime counters (single mode after each packet, or a lane
// merge after a quiescent drain or worker join).
func (s *PathStats) FlushInto(r *Runtime) {
	if t := r.tel; t != nil {
		s.flushTel(t)
	}
	s.flushLegacy(r)
}

// flushTel mirrors the counters into the shared telemetry counters without
// resetting them. The counters are sharded atomics, so this half is safe
// from a lane worker mid-stream; zero deltas are skipped so the per-packet
// compat flush stays a few atomic adds.
func (s *PathStats) flushTel(t *Telemetry) {
	if s.ProgramsRun != 0 {
		t.ProgramsRun.Add(s.ProgramsRun)
	}
	if s.Passthrough != 0 {
		t.Passthrough.Add(s.Passthrough)
	}
	if s.Faults != 0 {
		t.Faults.Add(s.Faults)
	}
	if s.PrivSuppressed != 0 {
		t.PrivSuppressed.Add(s.PrivSuppressed)
	}
	if s.QuarantineDrops != 0 {
		t.QuarantineDrops.Add(s.QuarantineDrops)
	}
	if s.RevokedDrops != 0 {
		t.RevokedDrops.Add(s.RevokedDrops)
	}
	if s.Specialized != 0 {
		t.Specialized.Add(s.Specialized)
	}
}

// flushLegacy drains the counters into the runtime's legacy fields and
// resets them, with no telemetry mirror — the merge half for counts whose
// telemetry was already mirrored mid-stream (lane carries). Exclusive access
// to the runtime counters required.
func (s *PathStats) flushLegacy(r *Runtime) {
	r.ProgramsRun += s.ProgramsRun
	r.Passthrough += s.Passthrough
	r.Faults += s.Faults
	r.PrivSuppressed += s.PrivSuppressed
	r.QuarantineDrops += s.QuarantineDrops
	r.RevokedDrops += s.RevokedDrops
	r.SpecializedRuns += s.Specialized
	*s = PathStats{}
}

// addInto adds the counters into dst without resetting s.
func (s *PathStats) addInto(dst *PathStats) {
	dst.ProgramsRun += s.ProgramsRun
	dst.Passthrough += s.Passthrough
	dst.Faults += s.Faults
	dst.PrivSuppressed += s.PrivSuppressed
	dst.QuarantineDrops += s.QuarantineDrops
	dst.RevokedDrops += s.RevokedDrops
	dst.Specialized += s.Specialized
}

// ExecSink is the per-executor accounting context: path counters, a device
// counter sink, and buffered guard events. Each lane owns one; the compat
// path owns one and drains it after every packet.
type ExecSink struct {
	Path   PathStats
	Dev    *rmt.ExecStats
	Events []GuardEvent

	// FR is the executor's flight recorder (nil when telemetry is off).
	// Single-writer like the rest of the sink; the scrape goroutine copies
	// it out under the recorder's own mutex.
	FR *telemetry.FlightRecorder

	// lat is the bounded per-FID latency recorder (nil when telemetry is
	// off). Only the batch path records into it — ExecuteBatch observes per
	// packet and flushes once per batch — so the single-packet path's
	// telemetry overhead stays unchanged.
	lat *latVec
}

// NewExecSink returns a sink sized for the runtime's pipeline. With
// telemetry attached, the sink carries its own flight recorder under a
// fresh lane id and a per-FID latency recorder for the batch path.
func (r *Runtime) NewExecSink() *ExecSink {
	s := &ExecSink{Dev: rmt.NewExecStats(r.dev.NumStages())}
	if t := r.tel; t != nil {
		s.FR = telemetry.NewFlightRecorder(int(t.laneSeq.Add(1)), telemetry.DefaultFlightSize, telemetry.DefaultFlightPeriod)
		t.reg.AttachFlight(s.FR)
		s.lat = newLatVec(t.PacketLatFID)
	}
	return s
}

// DeliverEvents replays the buffered guard events into the installed
// GuardHook (single-threaded callers only) and clears the buffer.
func (r *Runtime) DeliverEvents(sink *ExecSink) {
	if r.guard != nil {
		for _, ev := range sink.Events {
			switch ev.Kind {
			case GuardEventMemFault:
				r.guard.MemFault(ev.FID, ev.Stage, ev.Addr, ev.Owner, ev.Owned)
			case GuardEventRecircThrottled:
				r.guard.RecircThrottled(ev.FID)
			case GuardEventRevokedDrop:
				r.guard.RevokedDrop(ev.FID)
			}
		}
	}
	sink.Events = sink.Events[:0]
}

// flightRefusal force-records a refused capsule into the sink's flight
// recorder (refusals always record; the sampling clock still advances so
// executed-capsule sampling stays uniform). The epoch lookup only happens
// on refusal paths, never per clean packet.
func (s *ExecSink) flightRefusal(cv *ctrlView, fid uint16, v telemetry.Verdict) {
	if fr := s.FR; fr != nil {
		fr.ShouldSample()
		fr.Record(telemetry.FlightEntry{FID: fid, Epoch: cv.epochs[fid], Verdict: v})
	}
}

// outSlot is one reusable output capsule: the Active, its Program, and the
// Output envelope all have stable addresses across reuse.
type outSlot struct {
	out  Output
	act  packet.Active
	prog isa.Program
}

// ExecResult holds every piece of per-packet scratch state the fast path
// needs: a pooled PHV, the device output buffer, and reusable output
// capsules. Outputs are valid until the next ExecuteCapsule call with the
// same ExecResult; callers that need to retain an output must copy it.
type ExecResult struct {
	Outputs []*Output

	phv     *rmt.PHV
	devOuts []*rmt.PHV
	slots   []*outSlot

	// memo is the direct-mapped plan memo (see specialize.go): single-writer
	// like the rest of the scratch state, validated per hit by plan-table and
	// program pointer identity.
	memo [planMemoSize]planMemoEntry
}

// NewExecResult returns an ExecResult ready for ExecuteCapsule.
func NewExecResult() *ExecResult {
	return &ExecResult{phv: &rmt.PHV{}}
}

var execResultPool = sync.Pool{New: func() any { return NewExecResult() }}

// GetExecResult takes an ExecResult from the package pool.
func GetExecResult() *ExecResult { return execResultPool.Get().(*ExecResult) }

// PutExecResult returns an ExecResult to the pool. The caller must not
// retain any Output obtained from it.
func PutExecResult(res *ExecResult) {
	res.Outputs = res.Outputs[:0]
	res.memo = [planMemoSize]planMemoEntry{} // drop plan references across owners
	execResultPool.Put(res)
}

// slot returns reusable output slot i, growing the slot table on first use.
func (res *ExecResult) slot(i int) *outSlot {
	for len(res.slots) <= i {
		res.slots = append(res.slots, &outSlot{})
	}
	return res.slots[i]
}

// addOutput appends a prepared slot's Output.
func (res *ExecResult) addOutput(s *outSlot) { res.Outputs = append(res.Outputs, &s.out) }

// ExecuteCapsule runs one program capsule through the pipeline with all
// scratch state drawn from res and all accounting routed into sink. It is
// the allocation-free equivalent of ExecuteProgram: admission checks read
// the published control snapshot, the PHV and output capsules are reused,
// and guard notifications are buffered in the sink instead of delivered
// inline. Admitted programs execute through their compiled plan when one is
// (or can be) cached for the current snapshot pair; everything else takes
// the interpreter (see specialize.go).
//
// Unlike ExecuteProgram, refused packets (revoked/quarantined/throttled) do
// not mutate the input capsule's flags: the FlagFailed marking is applied to
// the copied output capsule, which is what goes on the wire. The input may
// therefore be a pooled buffer reused by the caller.
func (r *Runtime) ExecuteCapsule(a *packet.Active, res *ExecResult, sink *ExecSink) {
	r.executeOne(a, res, sink, r.view(), r.dev.View(), r.planTab.Load())
}

// executeOne is ExecuteCapsule against explicitly loaded snapshots, shared
// by the single-packet and batch entry points.
func (r *Runtime) executeOne(a *packet.Active, res *ExecResult, sink *ExecSink, cv *ctrlView, pv *rmt.PipeView, tab *planTable) {
	res.Outputs = res.Outputs[:0]
	lat := r.passLat
	if a.Program == nil {
		s := res.slot(0)
		s.out = Output{Active: a, Latency: lat}
		res.addOutput(s)
		return
	}
	fid := a.Header.FID
	// Specialized entry: usable only when the plan table matches the loaded
	// snapshot pair by pointer identity (a publish in between unreaches it).
	// A cached plan exists only for a FID that passed the admission checks
	// under this exact control view, so a hit skips the revoked/admitted map
	// lookups; the quarantine mark is folded into the plan and only the
	// packet-dependent checks (FlagMemSync, recirculation budget) remain.
	spec := tab != nil && tab.cv == cv && tab.pv == pv &&
		!r.specOff.Load() && !r.dev.TraceEnabled()
	if spec {
		// The direct-mapped memo remembers the plan this executor last
		// resolved for the FID's slot; a hit (validated by table and program
		// pointer identity) skips the plan map's hash entirely.
		m := &res.memo[int(fid)&(planMemoSize-1)]
		pl := m.pl
		if m.tab != tab || m.prog != a.Program || m.fid != fid {
			pl = tab.plans[planKey{prog: a.Program, fid: fid}]
			if pl != nil {
				*m = planMemoEntry{tab: tab, prog: a.Program, fid: fid, pl: pl}
			}
		}
		if pl != nil {
			if pl.rp != nil {
				if pl.quarantined && a.Header.Flags&packet.FlagMemSync == 0 {
					sink.Path.QuarantineDrops++
					sink.flightRefusal(cv, fid, telemetry.VerdictQuarantined)
					res.hardDrop(a, lat)
					return
				}
				if !r.RecircAllowed(fid, a.Program.Len()) {
					sink.Events = append(sink.Events, GuardEvent{Kind: GuardEventRecircThrottled, FID: fid})
					sink.flightRefusal(cv, fid, telemetry.VerdictThrottled)
					res.hardDrop(a, lat)
					return
				}
				r.execSpecialized(a, pl, res, sink, cv, fid)
				return
			}
			// Cached negative (FORK or otherwise uncompilable): interpret,
			// and skip the compile retry below.
			spec = false
		}
	}
	if cv.revoked[fid] {
		sink.Path.RevokedDrops++
		sink.Events = append(sink.Events, GuardEvent{Kind: GuardEventRevokedDrop, FID: fid})
		sink.flightRefusal(cv, fid, telemetry.VerdictRevoked)
		res.hardDrop(a, lat)
		return
	}
	if !cv.admitted[fid] {
		sink.Path.Passthrough++
		if fr := sink.FR; fr != nil && fr.ShouldSample() {
			fr.Record(telemetry.FlightEntry{FID: fid, Verdict: telemetry.VerdictPassthrough})
		}
		s := res.slot(0)
		s.out = Output{Active: a, Latency: lat}
		res.addOutput(s)
		return
	}
	if cv.quarantined[fid] && a.Header.Flags&packet.FlagMemSync == 0 {
		sink.Path.QuarantineDrops++
		sink.flightRefusal(cv, fid, telemetry.VerdictQuarantined)
		res.hardDrop(a, lat)
		return
	}
	if !r.RecircAllowed(fid, a.Program.Len()) {
		sink.Events = append(sink.Events, GuardEvent{Kind: GuardEventRecircThrottled, FID: fid})
		sink.flightRefusal(cv, fid, telemetry.VerdictThrottled)
		res.hardDrop(a, lat)
		return
	}
	if spec {
		// First sighting of this program version under the current
		// snapshots, past all admission checks: compile (cached for every
		// subsequent packet) and execute the plan when one comes back.
		pl := r.compilePlan(tab, planKey{prog: a.Program, fid: fid})
		if pl.rp != nil {
			r.execSpecialized(a, pl, res, sink, cv, fid)
			return
		}
	}
	sink.Path.ProgramsRun++

	phv := res.phv
	phv.Reset()
	phv.FID = fid
	phv.Data = a.Args
	phv.Instrs = append(phv.Instrs[:0], a.Program.Instrs...)
	if a.Header.Flags&packet.FlagPreload != 0 {
		phv.MAR = a.Args[2]
		phv.MBR = a.Args[0]
	}
	r.applyPrivilegeInto(cv, phv, &sink.Path)
	if tup, ok := packet.ParseFiveTuple(a.Payload); ok {
		phv.TupleWords = tup.WordsArray()
	}

	res.devOuts = r.dev.ExecInto(phv, res.devOuts[:0], sink.Dev)
	for i, p := range res.devOuts {
		if p.Faulted {
			sink.Path.Faults++
			sink.Events = append(sink.Events, GuardEvent{
				Kind: GuardEventMemFault, FID: fid,
				Stage: p.FaultStage, Addr: p.FaultAddr,
				Owner: p.FaultOwner, Owned: p.FaultOwned,
			})
		}
		s := res.slot(i)
		r.encodeOutputInto(a, p, s)
		res.addOutput(s)
	}
	if fr := sink.FR; fr != nil {
		p := res.devOuts[0] // primary PHV describes the capsule's traversal
		forced := p.Faulted || p.Dropped
		if fr.ShouldSample() || forced {
			v := telemetry.VerdictExecuted
			if p.Dropped {
				v = telemetry.VerdictDropped
			}
			fr.Record(telemetry.FlightEntry{
				FID: fid, Epoch: cv.epochs[fid], Verdict: v,
				Stages: uint16(p.StagesRun), Passes: uint8(p.Passes),
				Faulted: p.Faulted, Addr: p.MAR, FaultAddr: p.FaultAddr,
			})
		}
	}
}

// hardDrop fills slot 0 with the dropped-with-FlagFailed output for packets
// refused before execution. The input capsule is shallow-copied into the
// slot and the failure flag set on the copy, so pooled inputs are never
// mutated; the copy shares the input's Program and Payload, which is fine
// for an output that is only read until the next ExecuteCapsule call.
func (res *ExecResult) hardDrop(a *packet.Active, lat time.Duration) {
	s := res.slot(0)
	s.act = *a
	s.act.Header.Flags |= packet.FlagFailed
	s.out = Output{Active: &s.act, Dropped: true, Latency: lat}
	res.addOutput(s)
}

// applyPrivilegeInto is applyPrivilege against an explicit control view and
// counter sink.
func (r *Runtime) applyPrivilegeInto(cv *ctrlView, p *rmt.PHV, ps *PathStats) {
	mask := ^uint8(0)
	if cv.hasPriv {
		if m, ok := cv.privilege[p.FID]; ok {
			mask = m
		}
	}
	if mask&PrivForwarding != 0 {
		return
	}
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.OpSetDst, isa.OpFork, isa.OpDrop:
			p.Instrs[i].Op = isa.OpNop
			ps.PrivSuppressed++
		}
	}
}

// encodeOutputInto rebuilds an output capsule from a post-execution PHV into
// the reusable slot, shrinking executed instruction headers unless the
// program opted out — the zero-allocation twin of encodeOutput.
func (r *Runtime) encodeOutputInto(in *packet.Active, p *rmt.PHV, s *outSlot) {
	hdr := in.Header
	hdr.Flags |= packet.FlagFromSwch
	if p.Complete {
		hdr.Flags |= packet.FlagDone
	}
	if p.ToSender {
		hdr.Flags |= packet.FlagRTS
	}
	if p.Dropped {
		hdr.Flags |= packet.FlagFailed
	}

	s.prog.Name = in.Program.Name
	s.prog.Instrs = s.prog.Instrs[:0]
	noShrink := in.Header.Flags&packet.FlagNoShrink != 0
	for _, instr := range p.Instrs {
		if instr.Executed && !noShrink {
			continue
		}
		s.prog.Instrs = append(s.prog.Instrs, instr)
	}

	s.act = packet.Active{
		Header:  hdr,
		Args:    p.Data,
		Program: &s.prog,
		Payload: in.Payload,
	}
	s.act.Header.SetType(packet.TypeProgram)
	s.out = Output{
		Active:   &s.act,
		ToSender: p.ToSender,
		DstSet:   p.DstSet,
		Dst:      p.Dst,
		Dropped:  p.Dropped,
		IsClone:  p.IsClone,
		Executed: true,
		Latency:  p.Latency,
		Passes:   p.Passes,
	}
}
