package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"

	"activermt/internal/packet"
)

// mkSeq returns a capsule whose Args[0] carries a sequence number, the
// cheapest way to watch ordering through the ring.
func mkSeq(seq uint32) *packet.Active {
	return &packet.Active{Args: [4]uint32{seq}}
}

// TestLaneRingOrderAndSlabReuse pushes many batches through a ring with an
// interleaved consumer and checks strict FIFO order — and that the slabs
// really are the ring's own storage: across wraparound, acquire must keep
// handing back the same laneRingSlots backing arrays (zero-copy means zero
// new slabs).
func TestLaneRingOrderAndSlabReuse(t *testing.T) {
	const batch = 4
	g := newLaneRing(batch)
	slabs := make(map[**packet.Active]bool) // &slab[0] identifies a backing array
	var next uint32
	for round := 0; round < 5*laneRingSlots; round++ {
		b := g.acquire()
		for i := 0; i < batch; i++ {
			b = append(b, mkSeq(next))
			next++
		}
		if cap(b) != batch {
			t.Fatalf("round %d: slab cap = %d, want %d (reallocated?)", round, cap(b), batch)
		}
		slabs[&b[0]] = true
		g.publish(b)

		got, ok := g.next()
		if !ok {
			t.Fatalf("round %d: ring empty after publish", round)
		}
		for i, a := range got {
			want := uint32(round*batch + i)
			if a.Args[0] != want {
				t.Fatalf("round %d slot %d: seq %d, want %d", round, i, a.Args[0], want)
			}
		}
		g.release(len(got))
	}
	if len(slabs) > laneRingSlots {
		t.Fatalf("saw %d distinct slabs across wraparound, want <= %d", len(slabs), laneRingSlots)
	}
	if d := g.depth(); d != 0 {
		t.Fatalf("depth = %d after drain, want 0", d)
	}
	if !g.drained() {
		t.Fatal("ring not drained")
	}
}

// TestLaneRingSPSCConcurrent streams sequenced capsules from a producer
// goroutine to a consumer goroutine and checks nothing is lost, duplicated,
// or reordered. Run under -race in the race-dataplane CI tier: the ring's
// entire correctness argument is the release/acquire pairing of its two
// cursors, which is exactly what the detector checks.
func TestLaneRingSPSCConcurrent(t *testing.T) {
	const batch, total = 8, 20000
	g := newLaneRing(batch)
	var consumed atomic.Uint64

	done := make(chan error, 1)
	go func() {
		var want uint32
		for {
			b, ok := g.next()
			if !ok {
				if g.closed.Load() {
					if b, ok = g.next(); !ok {
						done <- nil
						return
					}
				} else {
					sched()
					continue
				}
			}
			for _, a := range b {
				if a.Args[0] != want {
					done <- fmt.Errorf("sequence break: got %d, want %d", a.Args[0], want)
					return
				}
				want++
			}
			consumed.Add(uint64(len(b)))
			g.release(len(b))
		}
	}()

	var seq uint32
	for seq < total {
		b := g.acquire()
		for i := 0; i < batch && seq < total; i++ {
			b = append(b, mkSeq(seq))
			seq++
		}
		g.publish(b)
	}
	g.closed.Store(true)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d capsules, want %d", got, total)
	}
	if got := g.dispatched.Load(); got != total {
		t.Fatalf("dispatched counter = %d, want %d", got, total)
	}
	if got := g.processed.Load(); got != total {
		t.Fatalf("processed counter = %d, want %d", got, total)
	}
}

// TestLaneRingBlocksWhenFull fills the ring with no consumer and checks the
// producer's acquire of the (laneRingSlots+1)-th slab blocks until a slot is
// released — the backpressure that bounds dispatch-ahead.
func TestLaneRingBlocksWhenFull(t *testing.T) {
	g := newLaneRing(2)
	for i := 0; i < laneRingSlots; i++ {
		b := g.acquire()
		b = append(b, mkSeq(uint32(i)))
		g.publish(b)
	}

	var acquired atomic.Bool
	unblocked := make(chan struct{})
	go func() {
		b := g.acquire() // must block: ring is full
		acquired.Store(true)
		b = append(b, mkSeq(99))
		g.publish(b)
		close(unblocked)
	}()

	// Give the blocked producer plenty of chances to (wrongly) proceed.
	for i := 0; i < 200; i++ {
		sched()
	}
	if acquired.Load() {
		t.Fatal("acquire returned while the ring was full")
	}
	b, ok := g.next()
	if !ok {
		t.Fatal("full ring reports empty")
	}
	g.release(len(b))
	<-unblocked
	if !acquired.Load() {
		t.Fatal("acquire still blocked after a release")
	}
	if got := g.depth(); got != laneRingSlots {
		t.Fatalf("depth = %d, want %d (one drained, one published)", got, laneRingSlots)
	}
}
