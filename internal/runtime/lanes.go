package runtime

import (
	"fmt"
	gort "runtime"
	"sort"
	"sync"

	"activermt/internal/packet"
	"activermt/internal/rmt"
)

// sched yields the processor while a quiesce spin-waits for lane drains.
func sched() { gort.Gosched() }

// Lanes is the parallel multi-lane dataplane: N worker goroutines, each
// owning a block-aligned stripe of every stage's register array, executing
// capsules concurrently against the published pipeline snapshots. The
// dispatch thread hands batches to workers over per-lane bounded SPSC rings
// (see ring.go): no channel locks, no shared free-list, and the dispatch
// write lands directly in the lane-owned slab that the worker will execute
// from.
//
// Safety model (why this is race-free without per-word locks):
//
//   - Every admitted tenant is pinned to exactly one lane (see
//     RefreshRoutes): each lane owns the block-aligned stripes of the
//     tenants dealt to it. Regions of distinct tenants are disjoint (the
//     allocator's isolation invariant), so every register word has at most
//     one writing lane: single-writer, no locks. Tenants without memory
//     (and unadmitted FIDs) are spread by flow hash; they touch no words.
//   - The hot path reads only the immutable published snapshots (ctrlView,
//     rmt.PipeView), swapped atomically by the controller thread.
//   - Each worker owns its ExecResult (private plan memo), ExecSink
//     (counters, HistLocal latency twin, flight recorder), and ring slot —
//     no hot-path cache line is written by more than one goroutine.
//   - Counters accumulate in the per-lane sinks and merge into the
//     runtime's legacy fields at Quiesce and Stop, under the happens-before
//     edge of the ring drain (the worker's head store orders every sink
//     write before the merger's drain load). Workers additionally mirror
//     their counters into the sharded atomic telemetry metrics mid-stream,
//     so live scrapes see multi-lane progress without a quiesce.
//
// Control-plane rule: operations that WRITE register words (InstallGrant
// zeroes the granted region) require Quiesce() first — drain in-flight
// packets, commit, then resume dispatching. Operations that only retract
// state (RemoveGrant, Deactivate) are safe mid-stream: packets already in a
// lane executed against the old published view (exactly the semantics of a
// table swap on hardware), and packets dispatched after the commit see the
// new one.
//
// The single-threaded deterministic mode (ExecuteProgram, used by netsim
// experiments and chaos scenarios) remains the default; Lanes is the
// throughput mode behind `activebench -lanes N`.
type Lanes struct {
	rt *Runtime
	n  int

	rings   []*laneRing
	workers []*laneWorker
	wg      sync.WaitGroup

	// routes pins admitted FIDs to lanes; rebuilt from the published
	// pipeline view on Start and RefreshRoutes.
	routes map[uint16]int
	// routeView is the pipeline view routes were computed from. RefreshRoutes
	// is a no-op while the device republishes the same view pointer — grant
	// commits rebuild the view, so an unchanged pointer means unchanged
	// regions.
	routeView   *rmt.PipeView
	routeBuilds uint64

	open      [][]*packet.Active // per-lane ring slab being filled by Dispatch
	batchSize int
	stopped   bool

	// Sink, if set, receives every output on the worker goroutine that
	// produced it. The *Output is only valid for the duration of the call.
	Sink func(lane int, out *Output)
}

type laneWorker struct {
	id   int
	res  *ExecResult
	sink *ExecSink
	// carry accumulates counters the worker already mirrored into telemetry
	// mid-stream; they merge into the legacy runtime/device fields at the
	// next quiesce or stop, so nothing is double-counted and nothing is lost.
	carryPath PathStats
	carryDev  *rmt.ExecStats
	// emit delivers one capsule's outputs to l.Sink; built lazily on first
	// use so the closure is allocated once per worker, not per batch.
	emit func(a *packet.Active, outs []*Output)
}

// DefaultLaneBatch is the dispatch batch size: large enough to amortize the
// ring's cursor hand-off, small enough to keep lanes busy under skew.
const DefaultLaneBatch = 128

// laneTelFlushBatches is how often (in executed batches) a worker mirrors
// its accumulated counters into the shared telemetry metrics. At the default
// batch size that is every ~8K capsules — frequent enough for live scrapes,
// rare enough to be invisible in the profile.
const laneTelFlushBatches = 64

// NewLanes starts n worker lanes over the runtime. The runtime must have a
// nil device trace hook, and the caller must route all control-plane
// operations through the same goroutine that calls Dispatch/Quiesce/Stop.
func (r *Runtime) NewLanes(n int) (*Lanes, error) {
	if n < 1 {
		return nil, fmt.Errorf("runtime: lane count %d < 1", n)
	}
	l := &Lanes{
		rt:        r,
		n:         n,
		rings:     make([]*laneRing, n),
		workers:   make([]*laneWorker, n),
		open:      make([][]*packet.Active, n),
		batchSize: DefaultLaneBatch,
		routes:    make(map[uint16]int),
	}
	for i := 0; i < n; i++ {
		l.rings[i] = newLaneRing(l.batchSize)
		w := &laneWorker{
			id:       i,
			res:      NewExecResult(),
			sink:     r.NewExecSink(),
			carryDev: rmt.NewExecStats(r.dev.NumStages()),
		}
		l.workers[i] = w
		l.wg.Add(1)
		go l.runLane(w)
	}
	l.RefreshRoutes()
	if r.tel != nil {
		r.telLanes.Store(l)
	}
	return l, nil
}

// N returns the lane count.
func (l *Lanes) N() int { return l.n }

// RouteBuilds returns how many times the FID→lane pinning has actually been
// recomputed (rebuilds skipped for an unchanged view don't count).
func (l *Lanes) RouteBuilds() uint64 { return l.routeBuilds }

// QueueDepth returns the number of dispatched capsules not yet fully
// executed, summed over lanes. Atomic reads; safe from any goroutine.
func (l *Lanes) QueueDepth() uint64 {
	var d uint64
	for _, g := range l.rings {
		d += g.depth()
	}
	return d
}

// RefreshRoutes recomputes the FID→lane pinning from the published pipeline
// view. Call after control-plane commits that add tenants (NewLanes and
// Quiesce call it automatically). The rebuild is skipped when the device is
// still publishing the view the current routes were computed from.
//
// Pinning is RSS-style with occupancy weighting: tenants are dealt to lanes
// heaviest-first (total granted words across stages), each to the currently
// least-loaded lane, so a skewed tenant mix — one elastic tenant holding
// half a stage next to a crowd of one-block tenants — still balances instead
// of landing wherever insertion order put it. Any deterministic tenant→lane
// map preserves the single-writer invariant — tenant regions are disjoint,
// so a word is only ever written by its owner's one lane — the deal order is
// purely a load-balancing choice. Ties are broken by (base address, stage,
// FID) and lowest lane index, keeping the deal deterministic.
func (l *Lanes) RefreshRoutes() {
	v := l.rt.dev.View()
	if v == l.routeView {
		return
	}
	for fid := range l.routes {
		delete(l.routes, fid)
	}
	type tenant struct {
		fid   uint16
		words uint64 // total granted words across stages: the occupancy weight
		lo    uint32 // first-seen region base, for deterministic tie-breaks
		stage int
	}
	var tenants []tenant
	index := make(map[uint16]int)
	for s := 0; s < l.rt.dev.NumStages(); s++ {
		sv := v.StageView(s)
		for _, reg := range sv.Regions() {
			i, ok := index[reg.FID]
			if !ok {
				i = len(tenants)
				index[reg.FID] = i
				tenants = append(tenants, tenant{fid: reg.FID, lo: reg.Lo, stage: s})
			}
			tenants[i].words += uint64(reg.Hi - reg.Lo)
		}
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].words != tenants[j].words {
			return tenants[i].words > tenants[j].words
		}
		if tenants[i].lo != tenants[j].lo {
			return tenants[i].lo < tenants[j].lo
		}
		if tenants[i].stage != tenants[j].stage {
			return tenants[i].stage < tenants[j].stage
		}
		return tenants[i].fid < tenants[j].fid
	})
	load := make([]uint64, l.n)
	for _, t := range tenants {
		lane := 0
		for k := 1; k < l.n; k++ {
			if load[k] < load[lane] {
				lane = k
			}
		}
		l.routes[t.fid] = lane
		load[lane] += t.words
	}
	l.routeView = v
	l.routeBuilds++
}

// Dispatch queues a capsule for execution. Tenants with installed memory go
// to their pinned lane; everything else spreads by flowHash. The capsule is
// owned by the lane until its outputs have been delivered; with a pooled
// capsule, recycle it only after Quiesce or Stop.
func (l *Lanes) Dispatch(a *packet.Active, flowHash uint32) {
	lane, ok := l.routes[a.Header.FID]
	if !ok {
		lane = int(flowHash % uint32(l.n))
	}
	b := l.open[lane]
	if b == nil {
		b = l.rings[lane].acquire()
	}
	b = append(b, a)
	if len(b) >= l.batchSize {
		l.rings[lane].publish(b)
		b = nil
	}
	l.open[lane] = b
}

// Flush publishes all partially filled slabs to their lanes.
func (l *Lanes) Flush() {
	for lane, b := range l.open {
		if len(b) > 0 {
			l.rings[lane].publish(b)
			l.open[lane] = nil
		}
	}
}

// Quiesce drains the lanes: it flushes pending batches, waits until every
// dispatched capsule has been processed, merges lane accounting into the
// runtime, and refreshes lane routes. After Quiesce returns, no worker is
// touching register words, so the caller may perform word-writing control
// operations (InstallGrant) before dispatching again — and the runtime's
// counters and telemetry are exact as of the drain, making Quiesce a true
// flush point, not just a barrier.
func (l *Lanes) Quiesce() {
	l.Flush()
	for _, g := range l.rings {
		for !g.drained() {
			// Busy-wait with yields: drains are short (bounded by ring
			// depth × batch size) and Quiesce is a control-plane operation.
			sched()
		}
	}
	l.mergeSinks()
	l.RefreshRoutes()
}

// mergeSinks folds every lane's accounting — mid-stream telemetry carry,
// residual sink counters, buffered guard events — into the runtime and
// device. Callers must have established quiescence (drained rings or joined
// workers): the worker's release store orders all of its sink writes before
// the drain load observed here, and the worker writes its sink only between
// next() and release().
func (l *Lanes) mergeSinks() {
	for _, w := range l.workers {
		w.carryPath.flushLegacy(l.rt)
		w.carryDev.FlushLegacyInto(l.rt.dev)
		w.sink.Path.FlushInto(l.rt)
		w.sink.Dev.FlushInto(l.rt.dev)
		l.rt.DeliverEvents(w.sink)
	}
}

// Stop drains and joins the lanes, then merges every lane's counters and
// buffered guard events into the runtime and device under the join's
// happens-before edge. The Lanes value is dead afterwards.
func (l *Lanes) Stop() {
	if l.stopped {
		return
	}
	l.stopped = true
	l.Flush()
	for _, g := range l.rings {
		g.closed.Store(true)
	}
	l.wg.Wait()
	l.mergeSinks()
	l.rt.telLanes.CompareAndSwap(l, nil)
}

func (l *Lanes) runLane(w *laneWorker) {
	defer l.wg.Done()
	g := l.rings[w.id]
	idle, batches := 0, 0
	for {
		batch, ok := g.next()
		if !ok {
			if g.closed.Load() {
				// Re-poll once after observing close: the producer flushes
				// before closing, so a miss here means the ring is empty for
				// good.
				if batch, ok = g.next(); !ok {
					return
				}
			} else {
				idle++
				idleWait(idle)
				continue
			}
		}
		idle = 0
		// Whole-batch execution: snapshots and the plan table are loaded
		// once per dequeued batch instead of once per capsule, and the
		// per-FID latency recorder flushes once per batch — this is what
		// removed the per-packet hand-off overhead that made lanes slower
		// than the single-threaded loop.
		emit := w.emit
		if l.Sink != nil {
			if emit == nil {
				w.emit = func(a *packet.Active, outs []*Output) {
					for _, out := range outs {
						l.Sink(w.id, out)
					}
				}
				emit = w.emit
			}
		} else {
			emit = nil
		}
		l.rt.ExecuteBatch(batch, w.res, w.sink, emit)
		batches++
		if l.rt.tel != nil && batches%laneTelFlushBatches == 0 {
			// Mid-stream telemetry mirror, strictly inside the batch's
			// next/release window so it never races a quiescent merge.
			w.flushTel(l.rt)
		}
		g.release(len(batch))
	}
}

// flushTel mirrors the worker's accumulated counters into the shared
// (sharded, atomic) telemetry metrics without touching the runtime's legacy
// fields; the drained values move to the worker's carry so the next
// quiescent merge settles the legacy side exactly once. Worker goroutine
// only, between next() and release().
func (w *laneWorker) flushTel(r *Runtime) {
	if t := r.tel; t != nil {
		w.sink.Path.flushTel(t)
	}
	w.sink.Path.addInto(&w.carryPath)
	w.sink.Path = PathStats{}
	w.sink.Dev.FlushTelemetryInto(r.dev, w.carryDev)
}
