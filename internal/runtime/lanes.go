package runtime

import (
	"fmt"
	gort "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"activermt/internal/packet"
)

// sched yields the processor while a quiesce spin-waits for lane drains.
func sched() { gort.Gosched() }

// Lanes is the parallel multi-lane dataplane: N worker goroutines, each
// owning a block-aligned stripe of every stage's register array, executing
// capsules concurrently against the published pipeline snapshots.
//
// Safety model (why this is race-free without per-word locks):
//
//   - Every admitted tenant is pinned to exactly one lane (see
//     RefreshRoutes): each lane owns the block-aligned stripes of the
//     tenants dealt to it. Regions of distinct tenants are disjoint (the
//     allocator's isolation invariant), so every register word has at most
//     one writing lane: single-writer, no locks. Tenants without memory
//     (and unadmitted FIDs) are spread by flow hash; they touch no words.
//   - The hot path reads only the immutable published snapshots (ctrlView,
//     rmt.PipeView), swapped atomically by the controller thread.
//   - Counters accumulate in per-lane ExecSinks; guard events are buffered.
//     Both merge into the runtime's legacy fields at Stop, under the
//     happens-before edge of the goroutine join.
//
// Control-plane rule: operations that WRITE register words (InstallGrant
// zeroes the granted region) require Quiesce() first — drain in-flight
// packets, commit, then resume dispatching. Operations that only retract
// state (RemoveGrant, Deactivate) are safe mid-stream: packets already in a
// lane executed against the old published view (exactly the semantics of a
// table swap on hardware), and packets dispatched after the commit see the
// new one.
//
// The single-threaded deterministic mode (ExecuteProgram, used by netsim
// experiments and chaos scenarios) remains the default; Lanes is the
// throughput mode behind `activebench -lanes N`.
type Lanes struct {
	rt *Runtime
	n  int

	chans   []chan []*packet.Active
	free    chan []*packet.Active
	workers []*laneWorker
	wg      sync.WaitGroup

	// routes pins admitted FIDs to lanes; rebuilt from the published
	// pipeline view on Start and RefreshRoutes.
	routes map[uint16]int

	batches   [][]*packet.Active // per-lane batch being filled by Dispatch
	batchSize int

	dispatched atomic.Uint64
	processed  atomic.Uint64
	stopped    bool

	// Sink, if set, receives every output on the worker goroutine that
	// produced it. The *Output is only valid for the duration of the call.
	Sink func(lane int, out *Output)
}

type laneWorker struct {
	id   int
	res  *ExecResult
	sink *ExecSink
	// emit delivers one capsule's outputs to l.Sink; built lazily on first
	// use so the closure is allocated once per worker, not per batch.
	emit func(a *packet.Active, outs []*Output)
}

// DefaultLaneBatch is the dispatch batch size: large enough to amortize
// channel synchronization, small enough to keep lanes busy under skew.
const DefaultLaneBatch = 128

// NewLanes starts n worker lanes over the runtime. The runtime must have a
// nil device trace hook, and the caller must route all control-plane
// operations through the same goroutine that calls Dispatch/Quiesce/Stop.
func (r *Runtime) NewLanes(n int) (*Lanes, error) {
	if n < 1 {
		return nil, fmt.Errorf("runtime: lane count %d < 1", n)
	}
	l := &Lanes{
		rt:        r,
		n:         n,
		chans:     make([]chan []*packet.Active, n),
		free:      make(chan []*packet.Active, 4*n+4),
		workers:   make([]*laneWorker, n),
		batches:   make([][]*packet.Active, n),
		batchSize: DefaultLaneBatch,
		routes:    make(map[uint16]int),
	}
	for i := 0; i < n; i++ {
		l.chans[i] = make(chan []*packet.Active, 4)
		l.batches[i] = make([]*packet.Active, 0, l.batchSize)
		w := &laneWorker{id: i, res: NewExecResult(), sink: r.NewExecSink()}
		l.workers[i] = w
		l.wg.Add(1)
		go l.runLane(w)
	}
	l.RefreshRoutes()
	if r.tel != nil {
		r.telLanes.Store(l)
	}
	return l, nil
}

// N returns the lane count.
func (l *Lanes) N() int { return l.n }

// RefreshRoutes recomputes the FID→lane pinning from the published pipeline
// view. Call after control-plane commits that add tenants (NewLanes and
// Quiesce call it automatically).
//
// Pinning walks the tenants in base-address order and deals them to lanes
// round-robin: each lane ends up owning the block-aligned stripes (the
// allocator grants whole blocks) of every tenant dealt to it, and the deal
// stays balanced whether the allocator packed tenants into the low blocks or
// spread them elastically across the stage. Any deterministic tenant→lane map
// preserves the single-writer invariant — tenant regions are disjoint, so a
// word is only ever written by its owner's one lane — the deal order is
// purely a load-balancing choice.
func (l *Lanes) RefreshRoutes() {
	for fid := range l.routes {
		delete(l.routes, fid)
	}
	type anchor struct {
		fid   uint16
		lo    uint32
		stage int
	}
	var tenants []anchor
	seen := make(map[uint16]bool)
	v := l.rt.dev.View()
	for s := 0; s < l.rt.dev.NumStages(); s++ {
		sv := v.StageView(s)
		for _, reg := range sv.Regions() {
			if !seen[reg.FID] {
				seen[reg.FID] = true
				tenants = append(tenants, anchor{fid: reg.FID, lo: reg.Lo, stage: s})
			}
		}
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].lo != tenants[j].lo {
			return tenants[i].lo < tenants[j].lo
		}
		if tenants[i].stage != tenants[j].stage {
			return tenants[i].stage < tenants[j].stage
		}
		return tenants[i].fid < tenants[j].fid
	})
	for i, t := range tenants {
		l.routes[t.fid] = i % l.n
	}
}

// Dispatch queues a capsule for execution. Tenants with installed memory go
// to their pinned lane; everything else spreads by flowHash. The capsule is
// owned by the lane until its outputs have been delivered; with a pooled
// capsule, recycle it only after Quiesce or Stop.
func (l *Lanes) Dispatch(a *packet.Active, flowHash uint32) {
	lane, ok := l.routes[a.Header.FID]
	if !ok {
		lane = int(flowHash % uint32(l.n))
	}
	b := l.batches[lane]
	b = append(b, a)
	if len(b) >= l.batchSize {
		l.sendBatch(lane, b)
		b = l.nextBatch()
	}
	l.batches[lane] = b
}

func (l *Lanes) sendBatch(lane int, b []*packet.Active) {
	l.dispatched.Add(uint64(len(b)))
	l.chans[lane] <- b
}

func (l *Lanes) nextBatch() []*packet.Active {
	select {
	case b := <-l.free:
		return b[:0]
	default:
		return make([]*packet.Active, 0, l.batchSize)
	}
}

// Flush pushes all partially filled batches to their lanes.
func (l *Lanes) Flush() {
	for lane, b := range l.batches {
		if len(b) > 0 {
			l.sendBatch(lane, b)
			l.batches[lane] = l.nextBatch()
		}
	}
}

// Quiesce drains the lanes: it flushes pending batches, waits until every
// dispatched capsule has been processed, and refreshes lane routes. After
// Quiesce returns, no worker is touching register words, so the caller may
// perform word-writing control operations (InstallGrant) before dispatching
// again.
func (l *Lanes) Quiesce() {
	l.Flush()
	for l.processed.Load() != l.dispatched.Load() {
		// Busy-wait with yields: drains are short (bounded by channel
		// depth × batch size) and Quiesce is a control-plane operation.
		sched()
	}
	l.RefreshRoutes()
}

// Stop drains and joins the lanes, then merges every lane's counters and
// buffered guard events into the runtime and device under the join's
// happens-before edge. The Lanes value is dead afterwards.
func (l *Lanes) Stop() {
	if l.stopped {
		return
	}
	l.stopped = true
	l.Flush()
	for _, ch := range l.chans {
		close(ch)
	}
	l.wg.Wait()
	for _, w := range l.workers {
		w.sink.Path.FlushInto(l.rt)
		w.sink.Dev.FlushInto(l.rt.dev)
		l.rt.DeliverEvents(w.sink)
	}
	l.rt.telLanes.CompareAndSwap(l, nil)
}

func (l *Lanes) runLane(w *laneWorker) {
	defer l.wg.Done()
	for batch := range l.chans[w.id] {
		// Whole-batch execution: snapshots and the plan table are loaded
		// once per dequeued batch instead of once per capsule, and the
		// per-FID latency recorder flushes once per batch — this is what
		// removed the per-packet hand-off overhead that made lanes slower
		// than the single-threaded loop.
		emit := w.emit
		if l.Sink != nil {
			if emit == nil {
				w.emit = func(a *packet.Active, outs []*Output) {
					for _, out := range outs {
						l.Sink(w.id, out)
					}
				}
				emit = w.emit
			}
		} else {
			emit = nil
		}
		l.rt.ExecuteBatch(batch, w.res, w.sink, emit)
		n := uint64(len(batch))
		select {
		case l.free <- batch[:0]:
		default:
		}
		l.processed.Add(n)
	}
}
