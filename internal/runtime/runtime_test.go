package runtime

import (
	"net/netip"
	"testing"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
)

func testRuntime(t *testing.T) *Runtime {
	t.Helper()
	cfg := rmt.DefaultConfig()
	cfg.StageWords = 4096
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func progPacket(fid uint16, p *isa.Program, args [4]uint32) *packet.Active {
	a := &packet.Active{Header: packet.ActiveHeader{FID: fid}, Args: args, Program: p}
	a.Header.SetType(packet.TypeProgram)
	return a
}

// cacheQuery is the paper's Listing 1: query an in-network object cache.
var cacheQuery = isa.MustAssemble("cache-query", `
.arg ADDR 2
MAR_LOAD $ADDR
MEM_READ
MBR_EQUALS_DATA_1
CRET
MEM_READ
MBR_EQUALS_DATA_2
CRET
RTS
MEM_READ
MBR_STORE
RETURN
`)

// installCacheGrant gives fid an aligned region [lo,hi) in the three stages
// Listing 1's accesses land on (logical stages 1, 4, 8).
func installCacheGrant(t *testing.T, r *Runtime, fid uint16, lo, hi uint32) {
	t.Helper()
	g := Grant{FID: fid, Accesses: []AccessGrant{
		{Logical: 1, Lo: lo, Hi: hi},
		{Logical: 4, Lo: lo, Hi: hi},
		{Logical: 8, Lo: lo, Hi: hi},
	}}
	if _, err := r.InstallGrant(g); err != nil {
		t.Fatal(err)
	}
}

func TestCacheQueryHitAndMiss(t *testing.T) {
	r := testRuntime(t)
	const fid = 7
	installCacheGrant(t, r, fid, 0, 1024)

	// Populate bucket 100 via the control path: key halves in stages 1 and
	// 4 (at addresses 100 and 101 — MEM_READ advances MAR), value in stage
	// 8 (at address 102).
	key0, key1, val := uint32(0xAAAA0001), uint32(0xBBBB0002), uint32(0xCAFED00D)
	r.Device().Stage(1).Registers.Write(100, key0)
	r.Device().Stage(4).Registers.Write(101, key1)
	r.Device().Stage(8).Registers.Write(102, val)

	// Hit: matching key.
	outs := r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{key0, key1, 100, 0}))
	if len(outs) != 1 {
		t.Fatalf("outputs = %d", len(outs))
	}
	o := outs[0]
	if !o.ToSender {
		t.Fatal("cache hit should RTS")
	}
	if o.Active.Args[0] != val {
		t.Errorf("returned value = %#x, want %#x", o.Active.Args[0], val)
	}
	if o.Active.Header.Flags&packet.FlagDone == 0 {
		t.Error("FlagDone unset")
	}
	// All 11 instructions executed: the shrunk program is empty.
	if o.Active.Program.Len() != 0 {
		t.Errorf("shrunk program has %d instrs, want 0", o.Active.Program.Len())
	}

	// Miss: wrong first key half terminates at CRET without RTS.
	outs = r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{0xDEAD, key1, 100, 0}))
	if outs[0].ToSender {
		t.Error("cache miss must forward, not RTS")
	}
	// Miss on second half.
	outs = r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{key0, 0xDEAD, 100, 0}))
	if outs[0].ToSender {
		t.Error("partial-key miss must forward")
	}
}

func TestMemoryProtectionFault(t *testing.T) {
	r := testRuntime(t)
	const fid = 9
	installCacheGrant(t, r, fid, 0, 64)
	// Address 2000 is outside [0,64): the packet must fault and drop.
	outs := r.ExecuteProgram(progPacket(fid, cacheQuery.Clone(), [4]uint32{1, 2, 2000, 0}))
	if !outs[0].Dropped {
		t.Fatal("out-of-region access not dropped")
	}
	if outs[0].Active.Header.Flags&packet.FlagFailed == 0 {
		t.Error("FlagFailed unset")
	}
	if r.Faults != 1 {
		t.Errorf("Faults = %d, want 1", r.Faults)
	}
	if r.Device().Stage(1).Registers.Faults != 1 {
		t.Errorf("stage fault counter = %d", r.Device().Stage(1).Registers.Faults)
	}
}

func TestIsolationBetweenFIDs(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 64)
	installCacheGrant(t, r, 2, 64, 128)
	// FID 2 addressing FID 1's region must fault.
	outs := r.ExecuteProgram(progPacket(2, cacheQuery.Clone(), [4]uint32{1, 2, 10, 0}))
	if !outs[0].Dropped {
		t.Fatal("cross-tenant access not dropped")
	}
	// FID 2 in its own region executes.
	outs = r.ExecuteProgram(progPacket(2, cacheQuery.Clone(), [4]uint32{1, 2, 70, 0}))
	if outs[0].Dropped {
		t.Fatal("in-region access dropped")
	}
}

func TestUnadmittedAndQuarantinedPassThrough(t *testing.T) {
	r := testRuntime(t)
	pkt := progPacket(5, cacheQuery.Clone(), [4]uint32{1, 2, 0, 0})
	outs := r.ExecuteProgram(pkt)
	if outs[0].Executed {
		t.Fatal("unadmitted FID executed")
	}
	if r.Passthrough != 1 {
		t.Errorf("Passthrough = %d", r.Passthrough)
	}

	installCacheGrant(t, r, 5, 0, 64)
	r.Deactivate(5)
	if !r.Quarantined(5) {
		t.Fatal("not quarantined")
	}
	outs = r.ExecuteProgram(progPacket(5, cacheQuery.Clone(), [4]uint32{1, 2, 0, 0}))
	if outs[0].Executed {
		t.Fatal("quarantined FID executed")
	}
	r.Reactivate(5)
	outs = r.ExecuteProgram(progPacket(5, cacheQuery.Clone(), [4]uint32{1, 2, 0, 0}))
	if !outs[0].Executed {
		t.Fatal("reactivated FID did not execute")
	}
}

func TestInstallGrantZeroesRegion(t *testing.T) {
	r := testRuntime(t)
	r.Device().Stage(1).Registers.Write(10, 0xFFFF)
	installCacheGrant(t, r, 3, 0, 64)
	if got := r.Device().Stage(1).Registers.Read(10); got != 0 {
		t.Errorf("stale word %#x survived grant install", got)
	}
}

func TestInstallGrantReplaceAndRemove(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 4, 0, 64)
	before := r.Device().Stage(1).Prot.Used()
	// Replace with a different region: old entries must be freed.
	installCacheGrant(t, r, 4, 64, 128)
	if used := r.Device().Stage(1).Prot.Used(); used != before {
		t.Errorf("TCAM used %d after replace, want %d", used, before)
	}
	reg, ok := r.RegionFor(4, 1)
	if !ok || reg.Lo != 64 {
		t.Fatalf("region = %+v, %v", reg, ok)
	}
	ops := r.RemoveGrant(4)
	if ops <= 0 {
		t.Error("RemoveGrant reported no ops")
	}
	if r.Admitted(4) {
		t.Error("fid still admitted")
	}
	if _, ok := r.RegionFor(4, 1); ok {
		t.Error("region survived removal")
	}
	if r.RemoveGrant(4) != 0 {
		t.Error("double remove reported ops")
	}
}

func TestInstallGrantErrors(t *testing.T) {
	r := testRuntime(t)
	if _, err := r.InstallGrant(Grant{FID: 1, Accesses: []AccessGrant{{Logical: 1, Lo: 5, Hi: 5}}}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := r.InstallGrant(Grant{FID: 1, Accesses: []AccessGrant{{Logical: 1, Lo: 0, Hi: 1 << 20}}}); err == nil {
		t.Error("oversize region accepted")
	}
	if r.Admitted(1) {
		t.Error("failed grant left fid admitted")
	}
}

// hhSketch exercises HASH + ADDR_MASK + ADDR_OFFSET + MEM_MINREADINC: the
// count-min-sketch core of the paper's Listing 2.
var hhSketch = isa.MustAssemble("hh-sketch", `
MBR_LOAD 0
MBR2_LOAD 1
COPY_HASHDATA_MBR 0
COPY_HASHDATA_MBR2 1
HASH
ADDR_MASK
ADDR_OFFSET
MEM_MINREADINC
COPY_MBR2_MBR
HASH
ADDR_MASK
ADDR_OFFSET
MEM_MINREADINC
RETURN
`)

func TestSketchWithRuntimeTranslation(t *testing.T) {
	r := testRuntime(t)
	const fid = 11
	// Two sketch rows of 256 words each, at different offsets in stages 7
	// and 12 (the two MEM_MINREADINC logical positions).
	g := Grant{FID: fid, Accesses: []AccessGrant{
		{Logical: 7, Lo: 512, Hi: 768},
		{Logical: 12, Lo: 1024, Hi: 1280},
	}}
	if _, err := r.InstallGrant(g); err != nil {
		t.Fatal(err)
	}

	args := [4]uint32{0x1234, 0x5678, 0, 0}
	for i := 0; i < 3; i++ {
		outs := r.ExecuteProgram(progPacket(fid, hhSketch.Clone(), args))
		if outs[0].Dropped {
			t.Fatalf("iteration %d dropped (translation failed?)", i)
		}
	}
	// After 3 updates of the same key, the sketched min count (MBR2 of the
	// last run) is 3; verify memory actually holds counts within regions.
	sum7, _, err := r.Snapshot(fid, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := uint32(0)
	for _, w := range sum7 {
		total += w
	}
	if total != 3 {
		t.Errorf("stage 7 sketch row total = %d, want 3", total)
	}
	sum12, _, err := r.Snapshot(fid, 12)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, w := range sum12 {
		total += w
	}
	if total != 3 {
		t.Errorf("stage 12 sketch row total = %d, want 3", total)
	}
}

func TestSnapshotUnknownRegion(t *testing.T) {
	r := testRuntime(t)
	if _, _, err := r.Snapshot(99, 3); err == nil {
		t.Error("snapshot of unknown fid accepted")
	}
}

func TestAdmitStateless(t *testing.T) {
	r := testRuntime(t)
	const fid = 20
	prog := isa.MustAssemble("probe", "NOP\nNOP\nRTS\nRETURN")
	outs := r.ExecuteProgram(progPacket(fid, prog.Clone(), [4]uint32{}))
	if outs[0].Executed {
		t.Fatal("executed before admission")
	}
	r.AdmitStateless(fid)
	r.AdmitStateless(fid) // idempotent
	outs = r.ExecuteProgram(progPacket(fid, prog.Clone(), [4]uint32{}))
	if !outs[0].Executed || !outs[0].ToSender {
		t.Fatal("stateless program did not run")
	}
}

func TestNoShrinkKeepsInstructions(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(8)
	prog := isa.MustAssemble("p", "NOP\nNOP\nRETURN")
	a := progPacket(8, prog.Clone(), [4]uint32{})
	a.Header.Flags |= packet.FlagNoShrink
	outs := r.ExecuteProgram(a)
	if got := outs[0].Active.Program.Len(); got != 3 {
		t.Fatalf("NoShrink program length = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if !outs[0].Active.Program.Instrs[i].Executed {
			t.Errorf("instr %d not flagged executed", i)
		}
	}
}

func TestArithmeticAndCopyOps(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(6)
	run := func(src string, args [4]uint32) *rmt.PHV {
		t.Helper()
		prog := isa.MustAssemble("t", src)
		phv := &rmt.PHV{FID: 6, Data: args, Instrs: prog.Instrs}
		r.Device().Exec(phv)
		return phv
	}

	p := run("MBR_LOAD 0\nMBR2_LOAD 1\nMBR_ADD_MBR2\nRETURN", [4]uint32{7, 5})
	if p.MBR != 12 {
		t.Errorf("ADD: MBR = %d", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nMBR_SUBTRACT_MBR2\nRETURN", [4]uint32{7, 5})
	if p.MBR != 2 {
		t.Errorf("SUB: MBR = %d", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nMAX\nRETURN", [4]uint32{7, 5})
	if p.MBR != 7 {
		t.Errorf("MAX: MBR = %d", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nMIN\nRETURN", [4]uint32{7, 5})
	if p.MBR != 5 {
		t.Errorf("MIN: MBR = %d", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nREVMIN\nRETURN", [4]uint32{3, 9})
	if p.MBR2 != 3 {
		t.Errorf("REVMIN: MBR2 = %d", p.MBR2)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nSWAP_MBR_MBR2\nRETURN", [4]uint32{1, 2})
	if p.MBR != 2 || p.MBR2 != 1 {
		t.Errorf("SWAP: %d/%d", p.MBR, p.MBR2)
	}
	p = run("MBR_LOAD 0\nMBR_NOT\nRETURN", [4]uint32{0})
	if p.MBR != ^uint32(0) {
		t.Errorf("NOT: MBR = %#x", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nBIT_OR_MBR_MBR2\nRETURN", [4]uint32{0xF0, 0x0F})
	if p.MBR != 0xFF {
		t.Errorf("OR: MBR = %#x", p.MBR)
	}
	p = run("MAR_LOAD 0\nMBR_LOAD 1\nBIT_AND_MAR_MBR\nRETURN", [4]uint32{0xFF, 0x0F})
	if p.MAR != 0x0F {
		t.Errorf("AND: MAR = %#x", p.MAR)
	}
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nMAR_MBR_ADD_MBR2\nRETURN", [4]uint32{10, 20})
	if p.MAR != 30 {
		t.Errorf("MAR_MBR_ADD_MBR2: MAR = %d", p.MAR)
	}
	p = run("MAR_LOAD 0\nMBR2_LOAD 1\nMAR_ADD_MBR2\nRETURN", [4]uint32{10, 20})
	if p.MAR != 30 {
		t.Errorf("MAR_ADD_MBR2: MAR = %d", p.MAR)
	}
	p = run("MBR_LOAD 0\nCOPY_MAR_MBR\nCOPY_MBR2_MBR\nRETURN", [4]uint32{42})
	if p.MAR != 42 || p.MBR2 != 42 {
		t.Errorf("copies: MAR=%d MBR2=%d", p.MAR, p.MBR2)
	}
	p = run("MAR_LOAD 0\nCOPY_MBR_MAR\nRETURN", [4]uint32{17})
	if p.MBR != 17 {
		t.Errorf("COPY_MBR_MAR: MBR = %d", p.MBR)
	}
	p = run("MBR_LOAD 0\nMBR_EQUALS_DATA_1\nCRETI\nMBR_NOT\nRETURN", [4]uint32{9, 9})
	if p.MBR != 0 {
		t.Errorf("CRETI should have returned early with MBR=0, got %#x", p.MBR)
	}
	// MBR_STORE writes back to the packet.
	p = run("MBR_LOAD 0\nMBR2_LOAD 1\nMBR_ADD_MBR2\nMBR_STORE 3\nRETURN", [4]uint32{2, 3})
	if p.Data[3] != 5 {
		t.Errorf("MBR_STORE: data[3] = %d", p.Data[3])
	}
}

func TestSetDstForwarding(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(12)
	prog := isa.MustAssemble("setdst", "MBR_LOAD 0\nSET_DST\nRETURN")
	outs := r.ExecuteProgram(progPacket(12, prog.Clone(), [4]uint32{33}))
	if !outs[0].DstSet || outs[0].Dst != 33 {
		t.Fatalf("SET_DST output = %+v", outs[0])
	}
}

func TestForkProducesTwoOutputs(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(13)
	prog := isa.MustAssemble("fork", "FORK\nRETURN")
	outs := r.ExecuteProgram(progPacket(13, prog.Clone(), [4]uint32{}))
	if len(outs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(outs))
	}
	if !outs[1].IsClone {
		t.Error("second output not a clone")
	}
}

func TestFiveTupleHashing(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(14)
	prog := isa.MustAssemble("tuplehash", "COPY_HASHDATA_5TUPLE\nHASH\nCOPY_MBR_MAR\nRETURN")

	payload := buildUDP(t)
	a := progPacket(14, prog.Clone(), [4]uint32{})
	a.Payload = payload
	out1 := r.ExecuteProgram(a)[0]

	b := progPacket(14, prog.Clone(), [4]uint32{})
	b.Payload = payload
	out2 := r.ExecuteProgram(b)[0]
	if out1.Active.Args != out2.Active.Args {
		t.Error("same 5-tuple hashed differently")
	}
}

func buildUDP(t *testing.T) []byte {
	t.Helper()
	ip := packet.IPv4Header{TotalLen: 28, TTL: 64, Protocol: packet.ProtoUDP,
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")}
	udp := packet.UDPHeader{SrcPort: 7, DstPort: 8, Length: 8}
	return udp.Encode(ip.Encode(nil))
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestPreloadReachesFirstStage(t *testing.T) {
	// Appendix C: with the parser preloading MAR (and MBR), a write program
	// shrinks so its access lands on logical stage 0 — memory in the first
	// stage becomes addressable.
	r := testRuntime(t)
	const fid = 33
	g := Grant{FID: fid, Accesses: []AccessGrant{{Logical: 0, Lo: 128, Hi: 256}}}
	if _, err := r.InstallGrant(g); err != nil {
		t.Fatal(err)
	}
	prog := isa.MustAssemble("w0", "MEM_WRITE\nRTS\nRETURN") // access at index 0
	a := progPacket(fid, prog.Clone(), [4]uint32{0xBEEF, 0, 130, 0})
	a.Header.Flags |= packet.FlagPreload // MAR <- data[2], MBR <- data[0]
	outs := r.ExecuteProgram(a)
	if outs[0].Dropped {
		t.Fatal("preloaded first-stage write dropped")
	}
	if got := r.Device().Stage(0).Registers.Read(130); got != 0xBEEF {
		t.Errorf("stage-0 memory = %#x, want 0xBEEF", got)
	}
}

func TestTCAMAccountingBalances(t *testing.T) {
	// Install/remove cycles must leave every stage's TCAM budget exactly
	// where it started — a leak here would slowly brick the switch.
	r := testRuntime(t)
	baseline := make([]int, 20)
	for s := range baseline {
		baseline[s] = r.Device().Stage(s).Prot.Used()
	}
	for round := 0; round < 10; round++ {
		for fid := uint16(1); fid <= 8; fid++ {
			g := Grant{FID: fid, Accesses: []AccessGrant{
				{Logical: int(fid) % 20, Lo: uint32(fid) * 64, Hi: uint32(fid)*64 + 48},
				{Logical: (int(fid) + 7) % 20, Lo: 0, Hi: 100},
			}}
			if _, err := r.InstallGrant(g); err != nil {
				t.Fatal(err)
			}
		}
		for fid := uint16(1); fid <= 8; fid++ {
			r.RemoveGrant(fid)
		}
	}
	for s := range baseline {
		if got := r.Device().Stage(s).Prot.Used(); got != baseline[s] {
			t.Errorf("stage %d TCAM leaked: %d -> %d", s, baseline[s], got)
		}
	}
}
