package runtime

import (
	"math/rand"
	"testing"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
)

// Differential testing: a reference interpreter with independently written
// semantics executes random straight-line programs (including forward
// branches and hashing), and its final register/data state must match the
// pipeline's. This pins the stage-sequential execution model — including
// branch skipping across stages and per-stage hash seeding — against an
// oracle.

// refState mirrors the PHV registers.
type refState struct {
	mar, mbr, mbr2 uint32
	data           [4]uint32
	hash           [rmt.NumHashWords]uint32
	complete       bool
	disabledUntil  uint8
}

// refStep executes one instruction at logical stage idx.
func refStep(s *refState, in isa.Instruction, idx, numStages int) {
	if s.complete {
		return
	}
	if s.disabledUntil != 0 {
		if in.Label != s.disabledUntil {
			return
		}
		s.disabledUntil = 0
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpMbrLoad:
		s.mbr = s.data[in.Operand%4]
	case isa.OpMbrStore:
		s.data[in.Operand%4] = s.mbr
	case isa.OpMbr2Load:
		s.mbr2 = s.data[in.Operand%4]
	case isa.OpMarLoad:
		s.mar = s.data[in.Operand%4]
	case isa.OpCopyMbr2Mbr:
		s.mbr2 = s.mbr
	case isa.OpCopyMbrMbr2:
		s.mbr = s.mbr2
	case isa.OpCopyMarMbr:
		s.mar = s.mbr
	case isa.OpCopyMbrMar:
		s.mbr = s.mar
	case isa.OpCopyHashdataMbr:
		s.hash[in.Operand%rmt.NumHashWords] = s.mbr
	case isa.OpCopyHashdataMbr2:
		s.hash[in.Operand%rmt.NumHashWords] = s.mbr2
	case isa.OpMbrAddMbr2:
		s.mbr += s.mbr2
	case isa.OpMarAddMbr:
		s.mar += s.mbr
	case isa.OpMarAddMbr2:
		s.mar += s.mbr2
	case isa.OpMarMbrAddMbr2:
		s.mar = s.mbr + s.mbr2
	case isa.OpMbrSubMbr2:
		s.mbr -= s.mbr2
	case isa.OpBitAndMarMbr:
		s.mar &= s.mbr
	case isa.OpBitOrMbrMbr2:
		s.mbr |= s.mbr2
	case isa.OpMbrEqualsMbr2:
		s.mbr ^= s.mbr2
	case isa.OpMbrEqualsData:
		s.mbr ^= s.data[in.Operand%4]
	case isa.OpMax:
		if s.mbr2 > s.mbr {
			s.mbr = s.mbr2
		}
	case isa.OpMin:
		if s.mbr2 < s.mbr {
			s.mbr = s.mbr2
		}
	case isa.OpRevMin:
		if s.mbr < s.mbr2 {
			s.mbr2 = s.mbr
		}
	case isa.OpSwapMbrMbr2:
		s.mbr, s.mbr2 = s.mbr2, s.mbr
	case isa.OpMbrNot:
		s.mbr = ^s.mbr
	case isa.OpReturn:
		s.complete = true
	case isa.OpCRet:
		if s.mbr != 0 {
			s.complete = true
		}
	case isa.OpCRetI:
		if s.mbr == 0 {
			s.complete = true
		}
	case isa.OpCJump:
		if s.mbr != 0 {
			s.disabledUntil = in.Operand
		}
	case isa.OpCJumpI:
		if s.mbr == 0 {
			s.disabledUntil = in.Operand
		}
	case isa.OpUJump:
		s.disabledUntil = in.Operand
	case isa.OpHash:
		if in.Operand != 0 {
			s.mar = rmt.FixedHash(uint32(in.Operand), s.hash)
		} else {
			s.mar = rmt.StageHash(idx%numStages, s.hash)
		}
	}
}

// safeOps are the opcodes the generator draws from: everything except
// memory access, forwarding, EOF, and translation (those need switch
// state).
var safeOps = []isa.Opcode{
	isa.OpNop, isa.OpMbrLoad, isa.OpMbrStore, isa.OpMbr2Load, isa.OpMarLoad,
	isa.OpCopyMbr2Mbr, isa.OpCopyMbrMbr2, isa.OpCopyMarMbr, isa.OpCopyMbrMar,
	isa.OpCopyHashdataMbr, isa.OpCopyHashdataMbr2,
	isa.OpMbrAddMbr2, isa.OpMarAddMbr, isa.OpMarAddMbr2, isa.OpMarMbrAddMbr2,
	isa.OpMbrSubMbr2, isa.OpBitAndMarMbr, isa.OpBitOrMbrMbr2,
	isa.OpMbrEqualsMbr2, isa.OpMbrEqualsData,
	isa.OpMax, isa.OpMin, isa.OpRevMin, isa.OpSwapMbrMbr2, isa.OpMbrNot,
	isa.OpCRet, isa.OpCRetI, isa.OpHash,
}

// genProgram builds a random valid program, occasionally with forward
// branches.
func genProgram(rng *rand.Rand) *isa.Program {
	n := 3 + rng.Intn(35)
	p := &isa.Program{Name: "fuzz"}
	for i := 0; i < n; i++ {
		in := isa.Instruction{Op: safeOps[rng.Intn(len(safeOps))]}
		if in.Op.HasOperand() {
			in.Operand = uint8(rng.Intn(4))
		}
		p.Instrs = append(p.Instrs, in)
	}
	// Sprinkle up to two forward branches with labels.
	label := uint8(1)
	for b := 0; b < 2 && label <= isa.MaxLabel; b++ {
		src := rng.Intn(len(p.Instrs))
		tgt := src + 1 + rng.Intn(len(p.Instrs)-src)
		if tgt >= len(p.Instrs) {
			continue
		}
		if p.Instrs[tgt].Label != 0 || p.Instrs[src].Op.IsBranch() {
			continue
		}
		branchOps := []isa.Opcode{isa.OpCJump, isa.OpCJumpI, isa.OpUJump}
		p.Instrs[src] = isa.Instruction{Op: branchOps[rng.Intn(3)], Operand: label}
		p.Instrs[tgt].Label = label
		label++
	}
	if err := p.Validate(); err != nil {
		// Regenerate on the rare invalid combination.
		return genProgram(rng)
	}
	return p
}

func TestDifferentialInterpreter(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(1)
	numStages := r.Device().NumStages()
	maxSlots := r.Device().Config().MaxPasses * numStages
	rng := rand.New(rand.NewSource(20230910))

	for trial := 0; trial < 3000; trial++ {
		p := genProgram(rng)
		args := [4]uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}

		// Reference execution.
		ref := &refState{data: args}
		for idx, in := range p.Instrs {
			if idx >= maxSlots {
				break
			}
			refStep(ref, in, idx, numStages)
			if ref.complete {
				break
			}
		}

		// Pipeline execution.
		a := &packet.Active{Header: packet.ActiveHeader{FID: 1}, Args: args, Program: p.Clone()}
		a.Header.SetType(packet.TypeProgram)
		a.Header.Flags |= packet.FlagNoShrink
		outs := r.ExecuteProgram(a)
		if len(outs) != 1 {
			t.Fatalf("trial %d: %d outputs", trial, len(outs))
		}
		out := outs[0]
		if out.Dropped {
			// Programs longer than the recirculation limit drop; the
			// reference stops at maxSlots, so only compare data below.
			continue
		}
		if out.Active.Args != ref.data {
			t.Fatalf("trial %d: data mismatch\nprogram:\n%s\npipeline: %#v\nreference: %#v",
				trial, isa.Disassemble(p), out.Active.Args, ref.data)
		}
	}
}

func TestDifferentialBranchDense(t *testing.T) {
	// Branch-heavy programs: stress the disabled-until-label machinery.
	r := testRuntime(t)
	r.AdmitStateless(1)
	rng := rand.New(rand.NewSource(42))
	numStages := r.Device().NumStages()

	for trial := 0; trial < 1500; trial++ {
		p := &isa.Program{Name: "branchy"}
		// Alternating loads and conditional jumps.
		label := uint8(1)
		for i := 0; i < 16; i++ {
			switch rng.Intn(3) {
			case 0:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpMbrLoad, Operand: uint8(rng.Intn(4))})
			case 1:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpMbrNot})
			case 2:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpNop})
			}
		}
		for b := 0; b < 3 && label <= isa.MaxLabel; b++ {
			src := rng.Intn(len(p.Instrs) - 1)
			tgt := src + 1 + rng.Intn(len(p.Instrs)-src-1)
			if p.Instrs[tgt].Label != 0 || p.Instrs[src].Op.IsBranch() {
				continue
			}
			ops := []isa.Opcode{isa.OpCJump, isa.OpCJumpI, isa.OpUJump}
			p.Instrs[src] = isa.Instruction{Op: ops[rng.Intn(3)], Operand: label}
			p.Instrs[tgt].Label = label
			label++
		}
		if p.Validate() != nil {
			continue
		}
		args := [4]uint32{rng.Uint32() & 1, rng.Uint32(), rng.Uint32(), rng.Uint32()}
		ref := &refState{data: args}
		for idx, in := range p.Instrs {
			refStep(ref, in, idx, numStages)
			if ref.complete {
				break
			}
		}
		a := &packet.Active{Header: packet.ActiveHeader{FID: 1}, Args: args, Program: p.Clone()}
		a.Header.SetType(packet.TypeProgram)
		out := r.ExecuteProgram(a)[0]
		if out.Active.Args != ref.data {
			t.Fatalf("trial %d mismatch\n%s\npipeline %#v\nref %#v", trial, isa.Disassemble(p), out.Active.Args, ref.data)
		}
	}
}
