package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"activermt/internal/apps"
	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
	"activermt/internal/secapps"
)

// Differential testing: a reference interpreter with independently written
// semantics executes random straight-line programs (including forward
// branches and hashing), and its final register/data state must match the
// pipeline's. This pins the stage-sequential execution model — including
// branch skipping across stages and per-stage hash seeding — against an
// oracle.

// refState mirrors the PHV registers.
type refState struct {
	mar, mbr, mbr2 uint32
	data           [4]uint32
	hash           [rmt.NumHashWords]uint32
	complete       bool
	disabledUntil  uint8
}

// refStep executes one instruction at logical stage idx.
func refStep(s *refState, in isa.Instruction, idx, numStages int) {
	if s.complete {
		return
	}
	if s.disabledUntil != 0 {
		if in.Label != s.disabledUntil {
			return
		}
		s.disabledUntil = 0
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpMbrLoad:
		s.mbr = s.data[in.Operand%4]
	case isa.OpMbrStore:
		s.data[in.Operand%4] = s.mbr
	case isa.OpMbr2Load:
		s.mbr2 = s.data[in.Operand%4]
	case isa.OpMarLoad:
		s.mar = s.data[in.Operand%4]
	case isa.OpCopyMbr2Mbr:
		s.mbr2 = s.mbr
	case isa.OpCopyMbrMbr2:
		s.mbr = s.mbr2
	case isa.OpCopyMarMbr:
		s.mar = s.mbr
	case isa.OpCopyMbrMar:
		s.mbr = s.mar
	case isa.OpCopyHashdataMbr:
		s.hash[in.Operand%rmt.NumHashWords] = s.mbr
	case isa.OpCopyHashdataMbr2:
		s.hash[in.Operand%rmt.NumHashWords] = s.mbr2
	case isa.OpMbrAddMbr2:
		s.mbr += s.mbr2
	case isa.OpMarAddMbr:
		s.mar += s.mbr
	case isa.OpMarAddMbr2:
		s.mar += s.mbr2
	case isa.OpMarMbrAddMbr2:
		s.mar = s.mbr + s.mbr2
	case isa.OpMbrSubMbr2:
		s.mbr -= s.mbr2
	case isa.OpBitAndMarMbr:
		s.mar &= s.mbr
	case isa.OpBitOrMbrMbr2:
		s.mbr |= s.mbr2
	case isa.OpMbrEqualsMbr2:
		s.mbr ^= s.mbr2
	case isa.OpMbrEqualsData:
		s.mbr ^= s.data[in.Operand%4]
	case isa.OpMax:
		if s.mbr2 > s.mbr {
			s.mbr = s.mbr2
		}
	case isa.OpMin:
		if s.mbr2 < s.mbr {
			s.mbr = s.mbr2
		}
	case isa.OpRevMin:
		if s.mbr < s.mbr2 {
			s.mbr2 = s.mbr
		}
	case isa.OpSwapMbrMbr2:
		s.mbr, s.mbr2 = s.mbr2, s.mbr
	case isa.OpMbrNot:
		s.mbr = ^s.mbr
	case isa.OpReturn:
		s.complete = true
	case isa.OpCRet:
		if s.mbr != 0 {
			s.complete = true
		}
	case isa.OpCRetI:
		if s.mbr == 0 {
			s.complete = true
		}
	case isa.OpCJump:
		if s.mbr != 0 {
			s.disabledUntil = in.Operand
		}
	case isa.OpCJumpI:
		if s.mbr == 0 {
			s.disabledUntil = in.Operand
		}
	case isa.OpUJump:
		s.disabledUntil = in.Operand
	case isa.OpHash:
		if in.Operand != 0 {
			s.mar = rmt.FixedHash(uint32(in.Operand), s.hash)
		} else {
			s.mar = rmt.StageHash(idx%numStages, s.hash)
		}
	}
}

// safeOps are the opcodes the generator draws from: everything except
// memory access, forwarding, EOF, and translation (those need switch
// state).
var safeOps = []isa.Opcode{
	isa.OpNop, isa.OpMbrLoad, isa.OpMbrStore, isa.OpMbr2Load, isa.OpMarLoad,
	isa.OpCopyMbr2Mbr, isa.OpCopyMbrMbr2, isa.OpCopyMarMbr, isa.OpCopyMbrMar,
	isa.OpCopyHashdataMbr, isa.OpCopyHashdataMbr2,
	isa.OpMbrAddMbr2, isa.OpMarAddMbr, isa.OpMarAddMbr2, isa.OpMarMbrAddMbr2,
	isa.OpMbrSubMbr2, isa.OpBitAndMarMbr, isa.OpBitOrMbrMbr2,
	isa.OpMbrEqualsMbr2, isa.OpMbrEqualsData,
	isa.OpMax, isa.OpMin, isa.OpRevMin, isa.OpSwapMbrMbr2, isa.OpMbrNot,
	isa.OpCRet, isa.OpCRetI, isa.OpHash,
}

// genProgram builds a random valid program, occasionally with forward
// branches.
func genProgram(rng *rand.Rand) *isa.Program {
	n := 3 + rng.Intn(35)
	p := &isa.Program{Name: "fuzz"}
	for i := 0; i < n; i++ {
		in := isa.Instruction{Op: safeOps[rng.Intn(len(safeOps))]}
		if in.Op.HasOperand() {
			in.Operand = uint8(rng.Intn(4))
		}
		p.Instrs = append(p.Instrs, in)
	}
	// Sprinkle up to two forward branches with labels.
	label := uint8(1)
	for b := 0; b < 2 && label <= isa.MaxLabel; b++ {
		src := rng.Intn(len(p.Instrs))
		tgt := src + 1 + rng.Intn(len(p.Instrs)-src)
		if tgt >= len(p.Instrs) {
			continue
		}
		if p.Instrs[tgt].Label != 0 || p.Instrs[src].Op.IsBranch() {
			continue
		}
		branchOps := []isa.Opcode{isa.OpCJump, isa.OpCJumpI, isa.OpUJump}
		p.Instrs[src] = isa.Instruction{Op: branchOps[rng.Intn(3)], Operand: label}
		p.Instrs[tgt].Label = label
		label++
	}
	if err := p.Validate(); err != nil {
		// Regenerate on the rare invalid combination.
		return genProgram(rng)
	}
	return p
}

func TestDifferentialInterpreter(t *testing.T) {
	r := testRuntime(t)
	r.AdmitStateless(1)
	numStages := r.Device().NumStages()
	maxSlots := r.Device().Config().MaxPasses * numStages
	rng := rand.New(rand.NewSource(20230910))

	for trial := 0; trial < 3000; trial++ {
		p := genProgram(rng)
		args := [4]uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}

		// Reference execution.
		ref := &refState{data: args}
		for idx, in := range p.Instrs {
			if idx >= maxSlots {
				break
			}
			refStep(ref, in, idx, numStages)
			if ref.complete {
				break
			}
		}

		// Pipeline execution.
		a := &packet.Active{Header: packet.ActiveHeader{FID: 1}, Args: args, Program: p.Clone()}
		a.Header.SetType(packet.TypeProgram)
		a.Header.Flags |= packet.FlagNoShrink
		outs := r.ExecuteProgram(a)
		if len(outs) != 1 {
			t.Fatalf("trial %d: %d outputs", trial, len(outs))
		}
		out := outs[0]
		if out.Dropped {
			// Programs longer than the recirculation limit drop; the
			// reference stops at maxSlots, so only compare data below.
			continue
		}
		if out.Active.Args != ref.data {
			t.Fatalf("trial %d: data mismatch\nprogram:\n%s\npipeline: %#v\nreference: %#v",
				trial, isa.Disassemble(p), out.Active.Args, ref.data)
		}
	}
}

// specOps extends safeOps with the switch-state opcodes the plan compiler
// folds at compile time: memory accesses, translation, and forwarding —
// the surface where a folding bug would diverge from the interpreter.
var specOps = append(append([]isa.Opcode{}, safeOps...),
	isa.OpMemRead, isa.OpMemWrite, isa.OpMemIncrement, isa.OpMemMinRead, isa.OpMemMinReadInc,
	isa.OpAddrMask, isa.OpAddrOffset,
	isa.OpRts, isa.OpCRts, isa.OpSetDst, isa.OpDrop, isa.OpReturn,
)

// genSpecProgram builds a random valid program over the full specializable
// surface, with occasional FORKs (uncompilable — exercises the
// cached-negative interpreter fallback) and forward branches.
func genSpecProgram(rng *rand.Rand) *isa.Program {
	n := 3 + rng.Intn(30)
	p := &isa.Program{Name: "spec-fuzz"}
	for i := 0; i < n; i++ {
		op := specOps[rng.Intn(len(specOps))]
		if rng.Intn(40) == 0 {
			op = isa.OpFork
		}
		in := isa.Instruction{Op: op}
		if in.Op.HasOperand() {
			in.Operand = uint8(rng.Intn(6))
		}
		p.Instrs = append(p.Instrs, in)
	}
	label := uint8(1)
	for b := 0; b < 2 && label <= isa.MaxLabel; b++ {
		src := rng.Intn(len(p.Instrs))
		tgt := src + 1 + rng.Intn(len(p.Instrs)-src)
		if tgt >= len(p.Instrs) {
			continue
		}
		if p.Instrs[tgt].Label != 0 || p.Instrs[src].Op.IsBranch() {
			continue
		}
		branchOps := []isa.Opcode{isa.OpCJump, isa.OpCJumpI, isa.OpUJump}
		p.Instrs[src] = isa.Instruction{Op: branchOps[rng.Intn(3)], Operand: label}
		p.Instrs[tgt].Label = label
		label++
	}
	if err := p.Validate(); err != nil {
		return genSpecProgram(rng)
	}
	return p
}

// TestDifferentialSpecializedVsInterpreter drives two identical runtimes —
// one with specialization forced off (the interpreter oracle), one with it
// on — through the same random stream of programs, grant reinstalls (epoch
// bumps, moved regions), quarantine flips, privilege changes, revocations,
// and unadmitted FIDs, and requires bit-identical wire outputs plus
// identical runtime and device counters. Each capsule runs twice so both
// the compile-inline and the cached-plan entries are exercised.
func TestDifferentialSpecializedVsInterpreter(t *testing.T) {
	ri := testRuntime(t) // interpreter oracle
	rs := testRuntime(t) // specialized
	ri.SetSpecialization(false)

	resI, resS := NewExecResult(), NewExecResult()
	sinkI, sinkS := ri.NewExecSink(), rs.NewExecSink()
	rng := rand.New(rand.NewSource(0xA11CE))

	grant := func(fid uint16, lo, hi uint32) {
		for _, r := range []*Runtime{ri, rs} {
			g := Grant{FID: fid}
			for l := 0; l < 10; l++ {
				g.Accesses = append(g.Accesses, AccessGrant{Logical: l, Lo: lo, Hi: hi})
			}
			if _, err := r.InstallGrant(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	grant(1, 0, 512)
	grant(2, 512, 1024)
	grant(3, 1024, 1536)

	for trial := 0; trial < 2000; trial++ {
		// Occasionally commit control-plane changes, identically on both:
		// each one republishes the snapshots and invalidates rs's plans.
		switch rng.Intn(20) {
		case 0: // epoch bump + region move
			fid := uint16(1 + rng.Intn(3))
			base := uint32(rng.Intn(6)) * 512
			grant(fid, base, base+512)
		case 1: // quarantine flip
			fid := uint16(1 + rng.Intn(3))
			if ri.Quarantined(fid) {
				ri.Reactivate(fid)
				rs.Reactivate(fid)
			} else {
				ri.Deactivate(fid)
				rs.Deactivate(fid)
			}
		case 2: // privilege change
			fid := uint16(1 + rng.Intn(3))
			mask := uint8(0)
			if rng.Intn(2) == 0 {
				mask = PrivForwarding
			}
			ri.SetPrivilege(fid, mask)
			rs.SetPrivilege(fid, mask)
		case 3: // revocation (a later grant() re-admits)
			fid := uint16(1 + rng.Intn(3))
			ri.RemoveGrant(fid)
			rs.RemoveGrant(fid)
		}

		p := genSpecProgram(rng)
		fid := uint16(1 + rng.Intn(4)) // FID 4 is never admitted: passthrough
		args := [4]uint32{rng.Uint32(), rng.Uint32(), uint32(rng.Intn(2048)), rng.Uint32()}
		var flags uint16
		if rng.Intn(2) == 0 {
			flags |= packet.FlagPreload
		}
		if rng.Intn(3) == 0 {
			flags |= packet.FlagNoShrink
		}

		for rep := 0; rep < 2; rep++ {
			ai := progPacket(fid, p, args)
			as := progPacket(fid, p, args)
			ai.Header.Flags |= flags
			as.Header.Flags |= flags
			want := execFast(ri, ai, resI, sinkI)
			got := execFast(rs, as, resS, sinkS)
			compareOutputs(t, fmt.Sprintf("trial %d rep %d", trial, rep), want, got)
		}
	}

	if rs.SpecializedRuns == 0 {
		t.Fatal("specialized path never ran")
	}
	if ri.SpecializedRuns != 0 {
		t.Fatal("interpreter oracle ran a specialized packet")
	}
	if ri.ProgramsRun != rs.ProgramsRun || ri.Passthrough != rs.Passthrough ||
		ri.Faults != rs.Faults || ri.QuarantineDrops != rs.QuarantineDrops ||
		ri.RevokedDrops != rs.RevokedDrops || ri.PrivSuppressed != rs.PrivSuppressed {
		t.Fatalf("runtime counters diverged:\ninterp %d/%d/%d/%d/%d/%d\nspec   %d/%d/%d/%d/%d/%d",
			ri.ProgramsRun, ri.Passthrough, ri.Faults, ri.QuarantineDrops, ri.RevokedDrops, ri.PrivSuppressed,
			rs.ProgramsRun, rs.Passthrough, rs.Faults, rs.QuarantineDrops, rs.RevokedDrops, rs.PrivSuppressed)
	}
	di, ds := ri.Device(), rs.Device()
	if di.PacketsIn != ds.PacketsIn || di.PacketsDropped != ds.PacketsDropped || di.Recirculations != ds.Recirculations {
		t.Fatalf("device counters diverged: %d/%d/%d vs %d/%d/%d",
			di.PacketsIn, di.PacketsDropped, di.Recirculations,
			ds.PacketsIn, ds.PacketsDropped, ds.Recirculations)
	}
	for s := 0; s < di.NumStages(); s++ {
		si, ss := di.Stage(s), ds.Stage(s)
		if si.Executed != ss.Executed {
			t.Fatalf("stage %d executed %d vs %d", s, si.Executed, ss.Executed)
		}
		if si.Registers.Reads != ss.Registers.Reads || si.Registers.Writes != ss.Registers.Writes ||
			si.Registers.Faults != ss.Registers.Faults {
			t.Fatalf("stage %d register counters diverged", s)
		}
	}
}

// TestDifferentialRegisteredApps pins every registered exemplar program —
// the apps package and the secapps security/measurement suite — to
// bit-identical interpreter vs. specialized execution. The random fuzzers
// above explore the instruction space; this suite guarantees the programs
// we actually ship (including the multi-pass claim arm and the DROP-bearing
// rate limiter) never diverge between the two paths.
func TestDifferentialRegisteredApps(t *testing.T) {
	ri := testRuntime(t) // interpreter oracle
	rs := testRuntime(t) // specialized
	ri.SetSpecialization(false)

	resI, resS := NewExecResult(), NewExecResult()
	sinkI, sinkS := ri.NewExecSink(), rs.NewExecSink()
	rng := rand.New(rand.NewSource(0x5ECA))

	progs := append(apps.Programs(), secapps.Programs()...)
	if len(progs) < 12 {
		t.Fatalf("registered programs = %d, registry looks truncated", len(progs))
	}
	for pi, tmpl := range progs {
		fid := uint16(100 + pi)
		acc := tmpl.MemoryAccessIndices()
		lo := uint32((pi % 8) * 512)
		for _, r := range []*Runtime{ri, rs} {
			if len(acc) == 0 {
				r.AdmitStateless(fid)
				continue
			}
			g := Grant{FID: fid}
			for _, idx := range acc {
				g.Accesses = append(g.Accesses, AccessGrant{Logical: idx, Lo: lo, Hi: lo + 512})
			}
			if _, err := r.InstallGrant(g); err != nil {
				t.Fatalf("%s: grant: %v", tmpl.Name, err)
			}
		}
		for trial := 0; trial < 200; trial++ {
			args := [4]uint32{rng.Uint32(), rng.Uint32(), lo + uint32(rng.Intn(600)), rng.Uint32()}
			var flags uint16
			if rng.Intn(3) == 0 {
				flags |= packet.FlagNoShrink
			}
			// Each capsule runs twice so both the compile-inline and the
			// cached-plan entries are exercised.
			for rep := 0; rep < 2; rep++ {
				ai := progPacket(fid, tmpl.Clone(), args)
				as := progPacket(fid, tmpl.Clone(), args)
				ai.Header.Flags |= flags
				as.Header.Flags |= flags
				want := execFast(ri, ai, resI, sinkI)
				got := execFast(rs, as, resS, sinkS)
				compareOutputs(t, fmt.Sprintf("%s trial %d rep %d", tmpl.Name, trial, rep), want, got)
			}
		}
	}

	if rs.SpecializedRuns == 0 {
		t.Fatal("specialized path never ran")
	}
	if ri.ProgramsRun != rs.ProgramsRun || ri.Faults != rs.Faults {
		t.Fatalf("runtime counters diverged: %d/%d vs %d/%d",
			ri.ProgramsRun, ri.Faults, rs.ProgramsRun, rs.Faults)
	}
	di, ds := ri.Device(), rs.Device()
	if di.PacketsIn != ds.PacketsIn || di.PacketsDropped != ds.PacketsDropped || di.Recirculations != ds.Recirculations {
		t.Fatalf("device counters diverged: %d/%d/%d vs %d/%d/%d",
			di.PacketsIn, di.PacketsDropped, di.Recirculations,
			ds.PacketsIn, ds.PacketsDropped, ds.Recirculations)
	}
	for s := 0; s < di.NumStages(); s++ {
		si, ss := di.Stage(s), ds.Stage(s)
		if si.Executed != ss.Executed ||
			si.Registers.Reads != ss.Registers.Reads || si.Registers.Writes != ss.Registers.Writes ||
			si.Registers.Faults != ss.Registers.Faults {
			t.Fatalf("stage %d counters diverged", s)
		}
	}
}

func TestDifferentialBranchDense(t *testing.T) {
	// Branch-heavy programs: stress the disabled-until-label machinery.
	r := testRuntime(t)
	r.AdmitStateless(1)
	rng := rand.New(rand.NewSource(42))
	numStages := r.Device().NumStages()

	for trial := 0; trial < 1500; trial++ {
		p := &isa.Program{Name: "branchy"}
		// Alternating loads and conditional jumps.
		label := uint8(1)
		for i := 0; i < 16; i++ {
			switch rng.Intn(3) {
			case 0:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpMbrLoad, Operand: uint8(rng.Intn(4))})
			case 1:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpMbrNot})
			case 2:
				p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpNop})
			}
		}
		for b := 0; b < 3 && label <= isa.MaxLabel; b++ {
			src := rng.Intn(len(p.Instrs) - 1)
			tgt := src + 1 + rng.Intn(len(p.Instrs)-src-1)
			if p.Instrs[tgt].Label != 0 || p.Instrs[src].Op.IsBranch() {
				continue
			}
			ops := []isa.Opcode{isa.OpCJump, isa.OpCJumpI, isa.OpUJump}
			p.Instrs[src] = isa.Instruction{Op: ops[rng.Intn(3)], Operand: label}
			p.Instrs[tgt].Label = label
			label++
		}
		if p.Validate() != nil {
			continue
		}
		args := [4]uint32{rng.Uint32() & 1, rng.Uint32(), rng.Uint32(), rng.Uint32()}
		ref := &refState{data: args}
		for idx, in := range p.Instrs {
			refStep(ref, in, idx, numStages)
			if ref.complete {
				break
			}
		}
		a := &packet.Active{Header: packet.ActiveHeader{FID: 1}, Args: args, Program: p.Clone()}
		a.Header.SetType(packet.TypeProgram)
		out := r.ExecuteProgram(a)[0]
		if out.Active.Args != ref.data {
			t.Fatalf("trial %d mismatch\n%s\npipeline %#v\nref %#v", trial, isa.Disassemble(p), out.Active.Args, ref.data)
		}
	}
}
