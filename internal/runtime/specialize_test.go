package runtime

import (
	"testing"

	"activermt/internal/packet"
	"activermt/internal/telemetry"
)

// batchWorkload builds a two-tenant batch of cache queries whose addresses
// land inside each tenant's grant.
func batchWorkload(t *testing.T, r *Runtime, n int) []*packet.Active {
	t.Helper()
	installCacheGrant(t, r, 1, 0, 1024)
	installCacheGrant(t, r, 2, 1024, 2048)
	batch := make([]*packet.Active, n)
	for i := range batch {
		fid := uint16(1 + i%2)
		addr := uint32(100 + (i%2)*1024 + i)
		a := progPacket(fid, cacheQuery, [4]uint32{uint32(i), uint32(i) ^ 0x5a5a, addr, 0})
		a.Header.Flags |= packet.FlagPreload
		batch[i] = a
	}
	return batch
}

// TestExecuteBatchZeroAlloc is the allocation gate for the batched hot path:
// once plans are compiled and the per-FID latency slots are warm, a whole
// ExecuteBatch call must not allocate — with telemetry both disabled and
// enabled (the batch path is the only one recording per-FID latencies).
func TestExecuteBatchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name      string
		telemetry bool
	}{
		{name: "bare", telemetry: false},
		{name: "telemetry", telemetry: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := testRuntime(t)
			if tc.telemetry {
				r.AttachTelemetry(telemetry.NewRegistry())
			}
			batch := batchWorkload(t, r, DefaultExecBatch)
			res := NewExecResult()
			sink := r.NewExecSink()
			for i := 0; i < 8; i++ { // warm scratch, plans, latency slots
				r.ExecuteBatch(batch, res, sink, nil)
				r.DeliverEvents(sink)
			}
			if avg := testing.AllocsPerRun(100, func() {
				r.ExecuteBatch(batch, res, sink, nil)
			}); avg != 0 {
				t.Fatalf("batch path allocates %.2f/batch, want 0", avg)
			}
			if sink.Path.Specialized == 0 {
				t.Fatal("batch never took the specialized path")
			}
		})
	}
}

// TestPlanInvalidationOnGrantCommit proves a grant commit (epoch bump +
// region move) evicts the compiled plan itself — not just the decoded
// program — and that a superseded plan table can never execute a stale plan:
// validity is pointer identity against the freshly loaded snapshots, so the
// stale table's hit falls back to the interpreter and the next packet
// recompiles against the just-published view.
func TestPlanInvalidationOnGrantCommit(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 1024)
	res := NewExecResult()
	sink := r.NewExecSink()
	a := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
	a.Header.Flags |= packet.FlagPreload

	r.ExecuteCapsule(a, res, sink)
	if sink.Path.Specialized != 1 {
		t.Fatalf("first capsule: Specialized = %d, want 1", sink.Path.Specialized)
	}
	if res.Outputs[0].Dropped {
		t.Fatal("in-grant query dropped")
	}
	if got := r.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles = %d, want 1", got)
	}
	tab1 := r.planTab.Load()
	if len(tab1.plans) != 1 {
		t.Fatalf("plan table holds %d plans, want 1", len(tab1.plans))
	}

	// Grant commit: the region moves to [1024,2048) and the epoch bumps.
	// publish() must install a fresh empty table keyed to the new snapshots.
	installCacheGrant(t, r, 1, 1024, 2048)
	tab2 := r.planTab.Load()
	if tab2 == tab1 {
		t.Fatal("grant commit did not replace the plan table")
	}
	if len(tab2.plans) != 0 {
		t.Fatalf("fresh plan table holds %d plans, want 0", len(tab2.plans))
	}
	if tab2.cv != r.view() || tab2.pv != r.dev.View() {
		t.Fatal("fresh plan table not keyed to the published snapshots")
	}

	// Executing against the superseded table must not use its stale plan:
	// the pointer-identity check fails and the packet interprets. The stale
	// table itself stays untouched.
	sink.Path = PathStats{}
	res2 := NewExecResult() // fresh memo: prove the table check alone suffices
	r.executeOne(a, res2, sink, r.view(), r.dev.View(), tab1)
	if sink.Path.Specialized != 0 {
		t.Fatal("stale plan table executed a specialized packet")
	}
	if len(tab1.plans) != 1 {
		t.Fatal("stale table mutated after supersession")
	}
	r.DeliverEvents(sink)

	// The next packet through the normal entry recompiles under the new
	// snapshots, and the recompiled plan carries the new bounds: address 100
	// is outside the moved grant and must fault.
	sink.Path = PathStats{}
	r.ExecuteCapsule(a, res, sink)
	if sink.Path.Specialized != 1 {
		t.Fatal("no specialized execution after recompilation")
	}
	if r.PlanCompiles() < 2 {
		t.Fatalf("PlanCompiles = %d, want >= 2", r.PlanCompiles())
	}
	if !res.Outputs[0].Dropped || sink.Path.Faults != 1 {
		t.Fatal("recompiled plan kept the stale grant bounds")
	}
	r.DeliverEvents(sink)
}

// TestPlanInvalidationOnQuarantineAndPrivilege pins the other two commit
// kinds the plan folds state from: a quarantine flip and a privilege change
// must both unreach the current plan table.
func TestPlanInvalidationOnQuarantineAndPrivilege(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 1024)
	res := NewExecResult()
	sink := r.NewExecSink()
	a := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
	a.Header.Flags |= packet.FlagPreload
	r.ExecuteCapsule(a, res, sink)

	tab := r.planTab.Load()
	r.Deactivate(1)
	if r.planTab.Load() == tab {
		t.Fatal("quarantine commit did not replace the plan table")
	}
	r.Reactivate(1)

	tab = r.planTab.Load()
	r.SetPrivilege(1, 0)
	if r.planTab.Load() == tab {
		t.Fatal("privilege commit did not replace the plan table")
	}
}

// TestSpecializationToggle proves SetSpecialization(false) forces the
// interpreter (the benchmark baseline) and that re-enabling resumes plan
// execution without a recompile.
func TestSpecializationToggle(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 1024)
	res := NewExecResult()
	sink := r.NewExecSink()
	a := progPacket(1, cacheQuery, [4]uint32{7, 9, 100, 0})
	a.Header.Flags |= packet.FlagPreload

	r.ExecuteCapsule(a, res, sink)
	if sink.Path.Specialized != 1 {
		t.Fatal("specialization not on by default")
	}
	r.SetSpecialization(false)
	r.ExecuteCapsule(a, res, sink)
	if sink.Path.Specialized != 1 {
		t.Fatal("disabled specialization still ran a plan")
	}
	r.SetSpecialization(true)
	compiles := r.PlanCompiles()
	r.ExecuteCapsule(a, res, sink)
	if sink.Path.Specialized != 2 {
		t.Fatal("re-enabled specialization did not run the cached plan")
	}
	if r.PlanCompiles() != compiles {
		t.Fatal("toggle recompiled an unchanged plan")
	}
}

// TestPerFIDLatencyHistogram proves the batch path feeds the per-FID
// latency family: after one batch over two tenants, the registry snapshot
// carries a child per FID with the batch's packet counts, and the
// passthrough capsule (unexecuted) is not recorded.
func TestPerFIDLatencyHistogram(t *testing.T) {
	r := testRuntime(t)
	reg := telemetry.NewRegistry()
	r.AttachTelemetry(reg)
	batch := batchWorkload(t, r, 8)
	batch = append(batch, progPacket(9, cacheQuery, [4]uint32{})) // unadmitted
	res := NewExecResult()
	sink := r.NewExecSink()
	r.ExecuteBatch(batch, res, sink, nil)

	counts := map[string]uint64{}
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != "activermt_packet_latency_fid_ns" {
			continue
		}
		for _, s := range m.Samples {
			if s.Hist != nil {
				counts[s.Labels] += s.Hist.Count
			}
		}
	}
	if counts[`fid="1"`] != 4 || counts[`fid="2"`] != 4 {
		t.Fatalf("per-FID latency counts = %v, want 4 per tenant", counts)
	}
	if counts[`fid="9"`] != 0 {
		t.Fatal("passthrough capsule recorded a latency")
	}
}

// TestLatVecBoundedCardinality floods a recorder with far more FIDs than it
// has slots and requires the overflow to fold into the "other" child while
// total observation count is conserved.
func TestLatVecBoundedCardinality(t *testing.T) {
	reg := telemetry.NewRegistry()
	lv := newLatVec(reg.NewHistogramVec("test_lat_fid", "t", "fid"))
	const fids = 500
	for f := 0; f < fids; f++ {
		lv.observe(uint16(f), uint64(10+f))
	}
	lv.flush()

	children, total, other := 0, uint64(0), uint64(0)
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != "test_lat_fid" {
			continue
		}
		for _, s := range m.Samples {
			if s.Hist == nil {
				continue
			}
			children++
			total += s.Hist.Count
			if s.Labels == `fid="other"` {
				other = s.Hist.Count
			}
		}
	}
	if children > latVecSlots+1 {
		t.Fatalf("%d histogram children, want <= %d", children, latVecSlots+1)
	}
	if total != fids {
		t.Fatalf("observations conserved: %d, want %d", total, fids)
	}
	if other == 0 {
		t.Fatal("overflow FIDs did not fold into the other child")
	}
}
