package runtime

import (
	"strconv"

	"activermt/internal/isa"
	"activermt/internal/packet"
	"activermt/internal/rmt"
	"activermt/internal/telemetry"
)

// This file is the specialization layer of the packet hot path. The decoded-
// program cache already canonicalizes programs per (FID, epoch, len, CRC32):
// every capsule carrying the same program version under the same grant epoch
// resolves to one shared *isa.Program. The runtime exploits that identity to
// compile each admitted program version once — against the exact published
// snapshot pair (ctrlView, rmt.PipeView) — into a straight-line rmt.Plan,
// then executes packets through the plan instead of the interpreter.
//
// Validity is pointer identity, never comparison: a plan table remembers the
// snapshot pair it was built against, publish() installs a fresh empty table
// after every snapshot swap, and the hot path uses a table only when its
// snapshot pointers equal the ones just loaded. A grant install, epoch bump,
// quarantine flip, privilege change, or revocation all funnel through
// publish(), so every one of them unreaches the previous table wholesale; a
// stale plan cannot execute because nothing can reach it.
//
// The interpreter remains the always-correct fallback: unknown or unadmitted
// FIDs, programs the compiler refuses (FORK), trace-hook sessions, a full
// plan table, and the window between a publish and the first recompile all
// run through the unchanged interpreter path.

// planKey identifies one compiled plan: the canonical decoded-program
// pointer (which already encodes FID, grant epoch, length, and CRC32 — see
// packet.ProgCache) plus the executing FID, so a capsule replaying another
// tenant's cached program body still gets its own bounds folded in.
type planKey struct {
	prog *isa.Program
	fid  uint16
}

// compiledPlan is the runtime-side wrapper of one compiled program: the
// privilege-rewritten instruction image the output encoder slices from, the
// device plan (nil when the program is not specializable — cached so the hot
// path stops retrying), and the admission facts folded at compile time.
type compiledPlan struct {
	rp     *rmt.Plan
	instrs []isa.Instruction
	// suppressed is the number of privileged instructions rewritten to NOP
	// at compile time; the interpreter counts suppressions per packet, so
	// the specialized path adds the same amount for every packet executed.
	suppressed uint64
	// quarantined snapshots the FID's quarantine mark under the compile
	// view: plans exist only for admitted, unrevoked FIDs (compilation runs
	// after the admission checks), so this is the only per-FID admission
	// flag the specialized entry still has to consult.
	quarantined bool
	// preMarked notes that the wire image arrived with Executed bits already
	// set on some headers, forcing the output encoder onto its filtering
	// slow path to reproduce the interpreter's shrink exactly.
	preMarked bool
}

// planMemoSize is the per-ExecResult direct-mapped plan memo size (a power
// of two). The memo short-circuits the plan-table map hash for the FIDs an
// executor is actively serving; a collision or a table swap just falls back
// to the map lookup.
const planMemoSize = 16

// planMemoEntry caches one resolved plan, validated by table pointer (which
// pins the snapshot pair) and canonical program pointer.
type planMemoEntry struct {
	tab  *planTable
	prog *isa.Program
	fid  uint16
	pl   *compiledPlan
}

// planTable maps program versions to compiled plans under one snapshot pair.
// Tables are copy-on-write: lookups walk the map lock-free while inserts
// (rare — once per program version per publish) build a new table under
// planMu and republish the pointer.
type planTable struct {
	cv    *ctrlView
	pv    *rmt.PipeView
	plans map[planKey]*compiledPlan
}

// maxPlans bounds a plan table. Overflowing compiles still execute their
// packet through a one-shot plan; they are just not cached.
const maxPlans = 4096

// resetPlans installs a fresh empty plan table for the current snapshot
// pair. Called (under planMu) from publish() after every snapshot swap.
func (r *Runtime) resetPlans(cv *ctrlView) {
	r.planMu.Lock()
	r.planTab.Store(&planTable{cv: cv, pv: r.dev.View(), plans: make(map[planKey]*compiledPlan)})
	r.planMu.Unlock()
}

// SetSpecialization enables or disables compiled-plan execution (enabled by
// default). Disabling it forces every packet through the interpreter — the
// honest baseline for benchmarks and differential tests.
func (r *Runtime) SetSpecialization(on bool) { r.specOff.Store(!on) }

// SpecializationEnabled reports whether compiled-plan execution is enabled.
func (r *Runtime) SpecializationEnabled() bool { return !r.specOff.Load() }

// PlanCompiles returns the number of plan compilations performed.
func (r *Runtime) PlanCompiles() uint64 { return r.planCompiles.Load() }

// compilePlan compiles key's program under tab's snapshot pair and caches
// the result in a republished copy-on-write table. The caller has already
// passed the admission checks for key.fid under tab.cv. If a control commit
// republished the snapshots since the caller loaded tab, the plan is built
// against the caller's (still consistent) pair but not cached — the
// superseded table must not be resurrected over the fresh one.
func (r *Runtime) compilePlan(tab *planTable, key planKey) *compiledPlan {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	cur := r.planTab.Load()
	if cur != tab {
		if pl, ok := cur.plans[key]; ok && cur.cv == tab.cv && cur.pv == tab.pv {
			return pl
		}
		if cur.cv != tab.cv || cur.pv != tab.pv {
			return r.buildPlan(tab.cv, tab.pv, key)
		}
		tab = cur
	}
	if pl, ok := tab.plans[key]; ok {
		return pl
	}
	pl := r.buildPlan(tab.cv, tab.pv, key)
	if len(tab.plans) < maxPlans {
		next := &planTable{cv: tab.cv, pv: tab.pv, plans: make(map[planKey]*compiledPlan, len(tab.plans)+1)}
		for k, v := range tab.plans {
			next.plans[k] = v
		}
		next.plans[key] = pl
		r.planTab.Store(next)
	}
	return pl
}

// buildPlan folds privilege and compiles the device plan for one program
// version under an explicit snapshot pair.
func (r *Runtime) buildPlan(cv *ctrlView, pv *rmt.PipeView, key planKey) *compiledPlan {
	cp := &compiledPlan{
		instrs:      append([]isa.Instruction(nil), key.prog.Instrs...),
		quarantined: cv.quarantined[key.fid],
	}
	mask := ^uint8(0)
	if cv.hasPriv {
		if m, ok := cv.privilege[key.fid]; ok {
			mask = m
		}
	}
	if mask&PrivForwarding == 0 {
		for i := range cp.instrs {
			switch cp.instrs[i].Op {
			case isa.OpSetDst, isa.OpFork, isa.OpDrop:
				cp.instrs[i].Op = isa.OpNop
				cp.suppressed++
			}
		}
	}
	for i := range cp.instrs {
		if cp.instrs[i].Executed {
			cp.preMarked = true
			break
		}
	}
	cp.rp = r.dev.CompilePlan(key.fid, cp.instrs, pv)
	r.planCompiles.Add(1)
	if t := r.tel; t != nil {
		t.PlanCompiles.Inc()
	}
	return cp
}

// execSpecialized runs one admitted capsule through its compiled plan. The
// caller has performed the admission checks; this mirrors the interpreter
// tail of executeOne (PHV fill, execution, fault event, output encoding,
// flight sampling) with the plan executor in place of ExecInto. The
// instruction image never enters the PHV: the plan carries it, and the
// encoder rebuilds the output body from the image plus the exit index.
func (r *Runtime) execSpecialized(a *packet.Active, pl *compiledPlan, res *ExecResult, sink *ExecSink, cv *ctrlView, fid uint16) {
	phv := res.phv
	phv.Reset()
	phv.FID = fid
	phv.Data = a.Args
	if a.Header.Flags&packet.FlagPreload != 0 {
		phv.MAR = a.Args[2]
		phv.MBR = a.Args[0]
	}
	if tup, ok := packet.ParseFiveTuple(a.Payload); ok {
		phv.TupleWords = tup.WordsArray()
	}
	exit := r.dev.ExecPlan(pl.rp, phv, sink.Dev)
	sink.Path.ProgramsRun++
	sink.Path.Specialized++
	sink.Path.PrivSuppressed += pl.suppressed
	if phv.Faulted {
		sink.Path.Faults++
		sink.Events = append(sink.Events, GuardEvent{
			Kind: GuardEventMemFault, FID: fid,
			Stage: phv.FaultStage, Addr: phv.FaultAddr,
			Owner: phv.FaultOwner, Owned: phv.FaultOwned,
		})
	}
	s := res.slot(0)
	r.encodePlanOutput(a, phv, pl, exit, s)
	res.addOutput(s)
	if fr := sink.FR; fr != nil {
		forced := phv.Faulted || phv.Dropped
		if fr.ShouldSample() || forced {
			v := telemetry.VerdictExecuted
			if phv.Dropped {
				v = telemetry.VerdictDropped
			}
			fr.Record(telemetry.FlightEntry{
				FID: fid, Epoch: cv.epochs[fid], Verdict: v,
				Stages: uint16(phv.StagesRun), Passes: uint8(phv.Passes),
				Faulted: phv.Faulted, Addr: phv.MAR, FaultAddr: phv.FaultAddr,
			})
		}
	}
}

// encodePlanOutput rebuilds the output capsule after a plan execution. The
// plan path never copies the instruction image into the PHV, so the shrink
// that encodeOutputInto derives from per-slot Executed flags is derived here
// from the exit index instead: the interpreter marks exactly the first exit
// headers, so the shrunk body is the image's tail — one append of a slice
// instead of a per-instruction filter loop.
func (r *Runtime) encodePlanOutput(in *packet.Active, p *rmt.PHV, pl *compiledPlan, exit int, s *outSlot) {
	hdr := in.Header
	hdr.Flags |= packet.FlagFromSwch
	if p.Complete {
		hdr.Flags |= packet.FlagDone
	}
	if p.ToSender {
		hdr.Flags |= packet.FlagRTS
	}
	if p.Dropped {
		hdr.Flags |= packet.FlagFailed
	}

	s.prog.Name = in.Program.Name
	instrs := pl.instrs
	switch {
	case in.Header.Flags&packet.FlagNoShrink != 0:
		// Keep every header, the traversed prefix marked Executed; marks
		// pre-set on the wire image survive the copy, as they survive the
		// interpreter's per-slot OR.
		s.prog.Instrs = append(s.prog.Instrs[:0], instrs...)
		for i := 0; i < exit; i++ {
			s.prog.Instrs[i].Executed = true
		}
	case !pl.preMarked:
		s.prog.Instrs = append(s.prog.Instrs[:0], instrs[exit:]...)
	default:
		// Rare: the wire image arrived with Executed bits already set; the
		// interpreter's shrink drops those headers too.
		s.prog.Instrs = s.prog.Instrs[:0]
		for i, instr := range instrs {
			if i < exit || instr.Executed {
				continue
			}
			s.prog.Instrs = append(s.prog.Instrs, instr)
		}
	}

	s.act = packet.Active{
		Header:  hdr,
		Args:    p.Data,
		Program: &s.prog,
		Payload: in.Payload,
	}
	s.act.Header.SetType(packet.TypeProgram)
	s.out = Output{
		Active:   &s.act,
		ToSender: p.ToSender,
		DstSet:   p.DstSet,
		Dst:      p.Dst,
		Dropped:  p.Dropped,
		IsClone:  p.IsClone,
		Executed: true,
		Latency:  p.Latency,
		Passes:   p.Passes,
	}
}

// DefaultExecBatch is the batch size ExecuteBatch callers should use: large
// enough to amortize the snapshot loads and the per-FID latency flush,
// small enough to keep per-packet output delivery prompt.
const DefaultExecBatch = 32

// ExecuteBatch runs a batch of capsules back to back against one loaded
// snapshot triple (control view, pipeline view, plan table), amortizing the
// atomic loads and the per-FID latency flush across the batch. Each
// capsule's outputs are delivered to emit (when non-nil) immediately after
// it executes and are invalid once the next capsule starts; emit must copy
// anything it retains. Executed-capsule latencies are recorded into the
// sink's per-FID recorder (telemetry only) and flushed once per batch.
//
// Snapshot semantics are per batch instead of per packet: a control commit
// published mid-batch takes effect from the next batch, exactly as a commit
// mid-packet takes effect from the next packet on the single path.
func (r *Runtime) ExecuteBatch(batch []*packet.Active, res *ExecResult, sink *ExecSink, emit func(a *packet.Active, outs []*Output)) {
	cv := r.view()
	pv := r.dev.View()
	tab := r.planTab.Load()
	lv := sink.lat
	for _, a := range batch {
		r.executeOne(a, res, sink, cv, pv, tab)
		if lv != nil {
			if outs := res.Outputs; len(outs) != 0 && outs[0].Executed {
				lv.observe(a.Header.FID, uint64(outs[0].Latency))
			}
		}
		if emit != nil {
			emit(a, res.Outputs)
		}
	}
	if lv != nil {
		lv.flush()
	}
}

// latVecSlots is the per-sink cardinality bound of the per-FID latency
// recorder: up to this many distinct FIDs get their own histogram child;
// the rest fold into the "other" child.
const latVecSlots = 64

// latSlot is one FID's lane-local latency accumulator plus its memoized
// registry child (resolved at flush time, then cached — so steady-state
// flushes never touch the vec's mutex map or format a label).
type latSlot struct {
	fid  uint16
	used bool
	h    telemetry.HistLocal
	dst  *telemetry.Histogram
}

// latVec accumulates per-FID packet latencies lane-locally with bounded
// cardinality. observe is two plain stores plus an open-addressed probe (no
// allocation, no atomics); flush — called once per batch — drains the
// touched slots into the shared HistogramVec children.
type latVec struct {
	vec         *telemetry.HistogramVec
	slots       [latVecSlots]latSlot
	overflow    telemetry.HistLocal
	overflowDst *telemetry.Histogram
	touched     []*latSlot
	overflowHot bool
}

func newLatVec(vec *telemetry.HistogramVec) *latVec {
	return &latVec{vec: vec, touched: make([]*latSlot, 0, latVecSlots)}
}

// latProbes bounds the linear probe: FIDs that cannot claim a slot within
// this many steps fold into the overflow child.
const latProbes = 8

func (lv *latVec) observe(fid uint16, lat uint64) {
	i := int(uint32(fid)*2654435761>>26) & (latVecSlots - 1)
	for p := 0; p < latProbes; p++ {
		s := &lv.slots[(i+p)&(latVecSlots-1)]
		if !s.used {
			s.used = true
			s.fid = fid
		}
		if s.fid == fid {
			if s.h.Count == 0 {
				lv.touched = append(lv.touched, s)
			}
			s.h.Observe(lat)
			return
		}
	}
	if lv.overflow.Count == 0 {
		lv.overflowHot = true
	}
	lv.overflow.Observe(lat)
}

// flush drains every touched accumulator into its registry child. First
// flush per FID resolves (and caches) the child handle; steady-state flushes
// are HistLocal merges only.
func (lv *latVec) flush() {
	for _, s := range lv.touched {
		if s.dst == nil {
			s.dst = lv.vec.With(strconv.FormatUint(uint64(s.fid), 10))
		}
		s.h.FlushInto(s.dst)
	}
	lv.touched = lv.touched[:0]
	if lv.overflowHot {
		if lv.overflowDst == nil {
			lv.overflowDst = lv.vec.With("other")
		}
		lv.overflow.FlushInto(lv.overflowDst)
		lv.overflowHot = false
	}
}
