package runtime

import (
	"sort"
	"testing"
)

// churnLayout is the fixed region plan for the churn test: fid 1..8, sized
// unevenly (128/256/512 words) so the occupancy-weighted deal has real skew
// to balance, at static disjoint offsets so a reinstall always lands on the
// same stripe.
type churnLayout struct {
	lo, size uint32
}

func churnPlan() map[uint16]churnLayout {
	plan := make(map[uint16]churnLayout)
	var off uint32
	for fid := uint16(1); fid <= 8; fid++ {
		size := uint32(128) << (fid % 3)
		plan[fid] = churnLayout{lo: off, size: size}
		off += size
	}
	return plan
}

// TestLanesRoutingChurnRace grants and evicts tenants across repeated
// Quiesce/RefreshRoutes cycles with traffic in between and asserts, every
// cycle, that (a) each admitted FID is pinned to exactly one lane and every
// one of its executed capsules ran on that lane, (b) the installed stripes
// are pairwise disjoint (the single-writer invariant's ground truth), and
// (c) each tenant's counter word is exact — no lost or cross-lane
// increments. Run under -race in CI: the churn exercises route rebuilds,
// ring reuse, and the quiescent sink merges all at once.
func TestLanesRoutingChurnRace(t *testing.T) {
	r := testRuntime(t)
	const nLanes = 4
	lanes, err := r.NewLanes(nLanes)
	if err != nil {
		t.Fatal(err)
	}

	// Per-lane witnesses: each map is written only by its lane's worker (via
	// Sink) and read/cleared only while quiescent, under the ring cursors'
	// happens-before edges.
	var seen [nLanes]map[uint16]int
	for i := range seen {
		seen[i] = make(map[uint16]int)
	}
	lanes.Sink = func(lane int, out *Output) {
		if out.Executed {
			seen[lane][out.Active.Header.FID]++
		}
	}

	plan := churnPlan()
	installed := make(map[uint16]bool)
	expect := make(map[uint16]uint32)

	const cycles, perFID = 30, 60
	for cycle := 0; cycle < cycles; cycle++ {
		// Word-writing control ops (InstallGrant zeroes regions) require a
		// drained dataplane.
		lanes.Quiesce()
		for _, fid := range []uint16{uint16(1 + cycle%8), uint16(1 + (cycle*3)%8)} {
			if installed[fid] {
				r.RemoveGrant(fid)
				delete(installed, fid)
				delete(expect, fid)
			} else {
				ly := plan[fid]
				g := Grant{FID: fid, Accesses: []AccessGrant{{Logical: 1, Lo: ly.lo, Hi: ly.lo + ly.size}}}
				if _, err := r.InstallGrant(g); err != nil {
					t.Fatal(err)
				}
				installed[fid] = true
				expect[fid] = 0
			}
		}
		lanes.RefreshRoutes()

		// (a) exactly-one-lane pinning, straight from the route table.
		for fid := range installed {
			lane, ok := lanes.routes[fid]
			if !ok {
				t.Fatalf("cycle %d: admitted fid %d not pinned", cycle, fid)
			}
			if lane < 0 || lane >= nLanes {
				t.Fatalf("cycle %d: fid %d pinned to bogus lane %d", cycle, fid, lane)
			}
		}
		// (b) disjoint stripe ownership across the installed set.
		type span struct {
			fid    uint16
			lo, hi uint32
		}
		perStage := make(map[int][]span)
		for fid := range installed {
			for phys, reg := range r.InstalledRegions(fid) {
				perStage[phys] = append(perStage[phys], span{fid, reg.Lo, reg.Hi})
			}
		}
		for phys, spans := range perStage {
			sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
			for i := 1; i < len(spans); i++ {
				if spans[i].lo < spans[i-1].hi {
					t.Fatalf("cycle %d stage %d: stripes overlap: fid %d [%d,%d) vs fid %d [%d,%d)",
						cycle, phys, spans[i-1].fid, spans[i-1].lo, spans[i-1].hi,
						spans[i].fid, spans[i].lo, spans[i].hi)
				}
			}
		}

		// Traffic: counters for every installed tenant, plus an unadmitted
		// FID spread by flow hash (it owns no words, so it may go anywhere).
		for i := 0; i < perFID; i++ {
			for fid := range installed {
				addr := plan[fid].lo + 5
				lanes.Dispatch(progPacket(fid, laneCounter, [4]uint32{0, 0, addr, 0}), uint32(i))
				expect[fid]++
			}
			lanes.Dispatch(progPacket(99, laneCounter, [4]uint32{0, 0, 0, 0}), uint32(cycle*perFID+i))
		}
		lanes.Quiesce() // drain; routes unchanged (same view), so pins held

		for fid := range installed {
			pinned := lanes.routes[fid]
			total := 0
			for lane := 0; lane < nLanes; lane++ {
				c := seen[lane][fid]
				if c > 0 && lane != pinned {
					t.Fatalf("cycle %d: fid %d executed %d capsules on lane %d, pinned to %d",
						cycle, fid, c, lane, pinned)
				}
				total += c
			}
			if total != perFID {
				t.Fatalf("cycle %d: fid %d executed %d capsules this cycle, want %d",
					cycle, fid, total, perFID)
			}
			if got := counterWord(t, r, fid, plan[fid].lo+5); got != expect[fid] {
				t.Fatalf("cycle %d: fid %d counter = %d, want %d", cycle, fid, got, expect[fid])
			}
		}
		for i := range seen {
			for k := range seen[i] {
				delete(seen[i], k)
			}
		}
	}
	lanes.Stop()
	if r.Faults != 0 {
		t.Fatalf("faults = %d, want 0", r.Faults)
	}
}

// TestRefreshRoutesSkipsUnchangedView checks the rebuild-elision satellite:
// Quiesce must not recompute the route map while the device keeps publishing
// the same pipeline view, and control operations that don't touch regions
// (Deactivate/Reactivate) must not force one either. A grant commit —
// which rebuilds the view — must.
func TestRefreshRoutesSkipsUnchangedView(t *testing.T) {
	r := testRuntime(t)
	installCacheGrant(t, r, 1, 0, 1024)
	lanes, err := r.NewLanes(2)
	if err != nil {
		t.Fatal(err)
	}
	defer lanes.Stop()

	b0 := lanes.RouteBuilds() // the build NewLanes performed
	lanes.Quiesce()
	lanes.Quiesce()
	if got := lanes.RouteBuilds(); got != b0 {
		t.Fatalf("quiesce without a grant commit rebuilt routes: builds %d -> %d", b0, got)
	}
	r.Deactivate(1)
	lanes.Quiesce()
	r.Reactivate(1)
	lanes.Quiesce()
	if got := lanes.RouteBuilds(); got != b0 {
		t.Fatalf("region-preserving control ops rebuilt routes: builds %d -> %d", b0, got)
	}

	lanes.Quiesce()
	installCacheGrant(t, r, 2, 1024, 2048)
	lanes.RefreshRoutes()
	if got := lanes.RouteBuilds(); got != b0+1 {
		t.Fatalf("grant commit: builds = %d, want %d", got, b0+1)
	}
	if _, ok := lanes.routes[2]; !ok {
		t.Fatal("new tenant not pinned after rebuild")
	}
}

// TestRefreshRoutesOccupancyWeighted checks the RSS-style deal balances by
// granted words, not insertion order: one elastic tenant holding half the
// stage must get a lane to itself while the crowd of small tenants shares
// the other, regardless of install order.
func TestRefreshRoutesOccupancyWeighted(t *testing.T) {
	r := testRuntime(t)
	// Lights first — insertion order must not matter.
	lights := []uint16{3, 4, 5}
	for i, fid := range lights {
		lo := uint32(2048 + i*256)
		g := Grant{FID: fid, Accesses: []AccessGrant{{Logical: 1, Lo: lo, Hi: lo + 256}}}
		if _, err := r.InstallGrant(g); err != nil {
			t.Fatal(err)
		}
	}
	heavy := Grant{FID: 2, Accesses: []AccessGrant{{Logical: 1, Lo: 0, Hi: 2048}}}
	if _, err := r.InstallGrant(heavy); err != nil {
		t.Fatal(err)
	}

	lanes, err := r.NewLanes(2)
	if err != nil {
		t.Fatal(err)
	}
	defer lanes.Stop()

	heavyLane := lanes.routes[2]
	for _, fid := range lights {
		if lanes.routes[fid] == heavyLane {
			t.Fatalf("light tenant %d dealt onto the heavy tenant's lane %d (routes: %v)",
				fid, heavyLane, lanes.routes)
		}
	}
	// Drive traffic through the skewed deal and make sure execution agrees.
	for i := 0; i < 200; i++ {
		lanes.Dispatch(progPacket(2, laneCounter, [4]uint32{0, 0, 9, 0}), uint32(i))
		for _, fid := range lights {
			addr := 2048 + uint32(fid-3)*256 + 1
			lanes.Dispatch(progPacket(fid, laneCounter, [4]uint32{0, 0, addr, 0}), uint32(i))
		}
	}
	lanes.Stop()
	if r.Faults != 0 {
		t.Fatalf("faults = %d, want 0", r.Faults)
	}
	if got := counterWord(t, r, 2, 9); got != 200 {
		t.Fatalf("heavy counter = %d, want 200", got)
	}
}
