package runtime

import (
	"testing"

	"activermt/internal/isa"
	"activermt/internal/packet"
)

// laneCounter bumps one register word per packet: instruction index 1 is
// MEM_INCREMENT, so the grant lives at logical stage 1 and the word count
// after a run is exact — the sharpest isolation witness available.
var laneCounter = isa.MustAssemble("lane-counter", `
MAR_LOAD 2
MEM_INCREMENT
RTS
RETURN
`)

// counterWord reads the tenant's counter word back through the
// control-plane snapshot path.
func counterWord(t *testing.T, r *Runtime, fid uint16, addr uint32) uint32 {
	t.Helper()
	for phys := range r.InstalledRegions(fid) {
		words, reg, err := r.Snapshot(fid, phys)
		if err != nil {
			t.Fatal(err)
		}
		if addr >= reg.Lo && addr < reg.Hi {
			return words[addr-reg.Lo]
		}
	}
	t.Fatalf("fid %d: no region covers addr %d", fid, addr)
	return 0
}

// TestLanesSingleLaneEquivalence: a single lane processes capsules in
// dispatch order, so after Stop the counters and register state must be
// identical to the same stream run through the sequential compat path.
func TestLanesSingleLaneEquivalence(t *testing.T) {
	ra := testRuntime(t)
	rb := testRuntime(t)
	installCacheGrant(t, ra, 1, 0, 1024)
	installCacheGrant(t, rb, 1, 0, 1024)

	lanes, err := rb.NewLanes(1)
	if err != nil {
		t.Fatal(err)
	}
	stream := func(i int) (*packet.Active, *packet.Active) {
		args := [4]uint32{uint32(i), uint32(i) ^ 0xbeef, uint32(100 + i%8), 0}
		fid := uint16(1)
		if i%7 == 6 {
			fid = 9 // unadmitted: passthrough on both paths
		}
		a := progPacket(fid, cacheQuery.Clone(), args)
		b := progPacket(fid, cacheQuery.Clone(), args)
		a.Header.Flags |= packet.FlagPreload
		b.Header.Flags |= packet.FlagPreload
		return a, b
	}
	const n = 400
	for i := 0; i < n; i++ {
		a, b := stream(i)
		ra.ExecuteProgram(a)
		lanes.Dispatch(b, uint32(i))
	}
	lanes.Stop()

	if ra.ProgramsRun != rb.ProgramsRun || ra.Passthrough != rb.Passthrough || ra.Faults != rb.Faults {
		t.Fatalf("counters diverged: compat run/pass/fault %d/%d/%d, lanes %d/%d/%d",
			ra.ProgramsRun, ra.Passthrough, ra.Faults, rb.ProgramsRun, rb.Passthrough, rb.Faults)
	}
	da, db := ra.Device(), rb.Device()
	if da.PacketsIn != db.PacketsIn || da.PacketsDropped != db.PacketsDropped {
		t.Fatalf("device counters diverged: %d/%d vs %d/%d",
			da.PacketsIn, da.PacketsDropped, db.PacketsIn, db.PacketsDropped)
	}
	for phys := range ra.InstalledRegions(1) {
		wa, _, err := ra.Snapshot(1, phys)
		if err != nil {
			t.Fatal(err)
		}
		wb, _, err := rb.Snapshot(1, phys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("stage %d word %d: compat %#x, lanes %#x", phys, i, wa[i], wb[i])
			}
		}
	}
}

// TestLanesParallelTenantIsolation runs four tenants across four lanes and
// checks the single-writer invariant held: every tenant's counter word is
// exact, with zero faults — no lost increments, no cross-tenant writes.
func TestLanesParallelTenantIsolation(t *testing.T) {
	r := testRuntime(t)
	const tenants, perTenant = 4, 1000
	for fid := uint16(1); fid <= tenants; fid++ {
		lo := uint32(fid-1) * 512
		g := Grant{FID: fid, Accesses: []AccessGrant{{Logical: 1, Lo: lo, Hi: lo + 512}}}
		if _, err := r.InstallGrant(g); err != nil {
			t.Fatal(err)
		}
	}
	lanes, err := r.NewLanes(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perTenant; i++ {
		for fid := uint16(1); fid <= tenants; fid++ {
			addr := uint32(fid-1)*512 + 7
			lanes.Dispatch(progPacket(fid, laneCounter, [4]uint32{0, 0, addr, 0}), uint32(i))
		}
	}
	lanes.Stop()

	if r.Faults != 0 {
		t.Fatalf("faults = %d, want 0", r.Faults)
	}
	if r.ProgramsRun != tenants*perTenant {
		t.Fatalf("programs run = %d, want %d", r.ProgramsRun, tenants*perTenant)
	}
	for fid := uint16(1); fid <= tenants; fid++ {
		addr := uint32(fid-1)*512 + 7
		if got := counterWord(t, r, fid, addr); got != perTenant {
			t.Fatalf("tenant %d counter = %d, want %d", fid, got, perTenant)
		}
	}
}

// TestLanesMidStreamRetraction removes a tenant's grant while the lanes are
// running. Retraction-only control operations are legal mid-stream: every
// victim capsule either executed against the old published view or was
// revoked-dropped under the new one — and every capsule dispatched after
// the commit is guaranteed dropped. No increments are lost or duplicated.
func TestLanesMidStreamRetraction(t *testing.T) {
	r := testRuntime(t)
	for fid := uint16(1); fid <= 2; fid++ {
		lo := uint32(fid-1) * 512
		g := Grant{FID: fid, Accesses: []AccessGrant{{Logical: 1, Lo: lo, Hi: lo + 512}}}
		if _, err := r.InstallGrant(g); err != nil {
			t.Fatal(err)
		}
	}
	lanes, err := r.NewLanes(2)
	if err != nil {
		t.Fatal(err)
	}
	const half = 500
	send := func(fid uint16, i int) {
		addr := uint32(fid-1)*512 + 3
		lanes.Dispatch(progPacket(fid, laneCounter, [4]uint32{0, 0, addr, 0}), uint32(i))
	}
	for i := 0; i < half; i++ {
		send(1, i)
		send(2, i)
	}
	r.RemoveGrant(2) // mid-stream, from the dispatch thread: retraction-only
	for i := half; i < 2*half; i++ {
		send(1, i)
		send(2, i)
	}
	lanes.Stop()

	if r.Faults != 0 {
		t.Fatalf("faults = %d, want 0", r.Faults)
	}
	if got := counterWord(t, r, 1, 3); got != 2*half {
		t.Fatalf("survivor counter = %d, want %d", got, 2*half)
	}
	// The victim's region is gone, so read its word via the device directly:
	// its lane stopped writing it at the retraction boundary.
	var victimStage int
	for phys := range r.InstalledRegions(1) {
		victimStage = phys // counter grants share logical stage 1
	}
	executed := uint64(r.Device().Stage(victimStage).Registers.Get(512 + 3))
	if executed+r.RevokedDrops != 2*half {
		t.Fatalf("victim executed %d + revoked-dropped %d != %d dispatched",
			executed, r.RevokedDrops, 2*half)
	}
	// Everything dispatched after the commit must have been dropped.
	if r.RevokedDrops < half {
		t.Fatalf("revoked drops = %d, want >= %d (post-retraction capsules)", r.RevokedDrops, half)
	}
	if !r.Revoked(2) {
		t.Fatal("victim not marked revoked")
	}
}

// TestLanesQuiesceInstall exercises the word-writing control rule: drain
// the lanes with Quiesce, install a new grant (which zeroes its region),
// refresh the routes to pin the new tenant, then resume dispatching.
func TestLanesQuiesceInstall(t *testing.T) {
	r := testRuntime(t)
	g1 := Grant{FID: 1, Accesses: []AccessGrant{{Logical: 1, Lo: 0, Hi: 512}}}
	if _, err := r.InstallGrant(g1); err != nil {
		t.Fatal(err)
	}
	lanes, err := r.NewLanes(2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	for i := 0; i < n; i++ {
		lanes.Dispatch(progPacket(1, laneCounter, [4]uint32{0, 0, 5, 0}), uint32(i))
	}

	lanes.Quiesce() // drain: no worker touches register words past this point
	g2 := Grant{FID: 2, Accesses: []AccessGrant{{Logical: 1, Lo: 512, Hi: 1024}}}
	if _, err := r.InstallGrant(g2); err != nil {
		t.Fatal(err)
	}
	// Quiesce refreshed routes BEFORE the install committed, so the new
	// tenant is not yet pinned; refresh again before dispatching it.
	lanes.RefreshRoutes()

	for i := 0; i < n; i++ {
		lanes.Dispatch(progPacket(2, laneCounter, [4]uint32{0, 0, 512 + 5, 0}), uint32(i))
		lanes.Dispatch(progPacket(1, laneCounter, [4]uint32{0, 0, 5, 0}), uint32(i))
	}
	lanes.Stop()

	if r.Faults != 0 {
		t.Fatalf("faults = %d, want 0", r.Faults)
	}
	if got := counterWord(t, r, 1, 5); got != 2*n {
		t.Fatalf("tenant 1 counter = %d, want %d", got, 2*n)
	}
	if got := counterWord(t, r, 2, 512+5); got != n {
		t.Fatalf("tenant 2 counter = %d, want %d", got, n)
	}
}
