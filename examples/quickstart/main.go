// Quickstart: deploy an active program onto a runtime-programmable switch
// and execute packets against it — no network simulation, just the core
// admission flow of the paper: write a program, request memory, receive a
// mutant placement, run at "line rate".
package main

import (
	"fmt"
	"log"

	"activermt/internal/compiler"
	"activermt/internal/core"
	"activermt/internal/isa"
	"activermt/internal/packet"
)

func main() {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A tiny stateful service: one counter per packet "color", stored in
	// switch memory, incremented by every packet that carries the
	// program. MAR arrives preloaded with data[2] (the counter address).
	prog := isa.MustAssemble("counter", `
.arg ADDR 2
MAR_LOAD $ADDR       // pick the counter
MEM_INCREMENT        // bump it; new value lands in MBR
MBR_STORE 0          // report the count back in data[0]
RTS                  // return the packet to its sender
RETURN
`)
	fmt.Println("program:")
	fmt.Print(isa.Disassemble(prog))

	// Deploy: this extracts the constraints (one memory access at
	// instruction 1), finds a feasible mutant, carves out a region, and
	// links the program against it.
	dep, err := sys.Deploy(1, prog, false, []compiler.AccessSpec{{Demand: 1}})
	if err != nil {
		log.Fatal(err)
	}
	grant := dep.Placement.Accesses[0]
	fmt.Printf("\ndeployed as FID %d: mutant %v, region [%d,%d) in logical stage %d\n",
		dep.FID, dep.Placement.Mutant, grant.Range.Lo, grant.Range.Hi, grant.Logical)

	// Execute: bump counter #3 five times. The client performs address
	// translation (region base + index), exactly as the paper's shim does.
	addr := grant.Range.Lo + 3
	for i := 0; i < 5; i++ {
		outs := sys.Execute(dep, [4]uint32{0, 0, addr, 0}, 0)
		out := outs[0]
		fmt.Printf("packet %d: count=%d returned-to-sender=%v latency=%v\n",
			i+1, out.Active.Args[0], out.ToSender, out.Latency)
	}

	// Memory protection: an address outside the granted region faults and
	// the packet is dropped — another tenant cannot touch this counter.
	outs := sys.Execute(dep, [4]uint32{0, 0, grant.Range.Hi + 10, 0}, 0)
	fmt.Printf("out-of-region access dropped=%v (flags=%#x)\n",
		outs[0].Dropped, outs[0].Active.Header.Flags&packet.FlagFailed)

	// A second tenant gets its own disjoint region automatically.
	dep2, err := sys.Deploy(2, prog, false, []compiler.AccessSpec{{Demand: 1}})
	if err != nil {
		log.Fatal(err)
	}
	g2 := dep2.Placement.Accesses[0]
	fmt.Printf("second tenant: region [%d,%d) stage %d (utilization now %.4f)\n",
		g2.Range.Lo, g2.Range.Hi, g2.Logical, sys.Utilization())
}
