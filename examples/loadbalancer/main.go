// Cheetah load balancing (Appendix B.2): a stateful server-selection
// program on SYNs (round-robin over a VIP pool held in switch memory) and a
// completely stateless per-packet routing program that recovers the chosen
// server from hash(5-tuple) XOR cookie — no per-flow switch state at all.
package main

import (
	"fmt"
	"log"
	"time"

	"activermt/internal/apps"
	"activermt/internal/client"
	"activermt/internal/packet"
	"activermt/internal/testbed"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Eight backend servers behind one VIP.
	const nsrv = 8
	servers := make([]*apps.EchoServer, nsrv)
	ports := make([]uint32, nsrv)
	for i := range servers {
		servers[i] = apps.NewEchoServer(tb.Eng, testbed.MACFor(201+i))
		p, ep := tb.Attach(servers[i], servers[i].MAC())
		servers[i].Attach(ep)
		ports[i] = uint32(p)
	}

	lb := apps.NewCheetah(0x5A17, nsrv)
	lb.Select = tb.AddClient(21, apps.CheetahSelectService())
	lb.Route = tb.AddClient(22, apps.CheetahRouteService())

	// Learn cookies from SYN responses echoed by the backends.
	cookies := map[uint16]uint32{}
	learn := func(c *client.Client, f *packet.Frame) {
		if f.Active == nil || f.Active.Args[1] == 0 {
			return
		}
		if tup, ok := packet.ParseFiveTuple(f.Inner); ok {
			cookies[tup.SrcPort] = f.Active.Args[1]
		}
	}
	lb.Select.Handler = learn

	must(lb.Select.RequestAllocation())
	must(tb.WaitOperational(lb.Select, 5*time.Second))
	must(lb.Route.RequestAllocation())
	must(tb.WaitOperational(lb.Route, 5*time.Second))
	pl := lb.Select.Placement()
	fmt.Printf("selector deployed: counter at stage %d, %d-entry pool at stage %d\n",
		pl.Accesses[0].Logical, pl.Accesses[1].Range.Hi-pl.Accesses[1].Range.Lo, pl.Accesses[1].Logical)
	fmt.Println("router deployed: stateless (no switch memory)")

	lb.SetupPool(ports)
	tb.RunFor(10 * time.Millisecond)

	// 64 flows, 16 data packets each, after a SYN that selects the server.
	for flow := 0; flow < 64; flow++ {
		tup := packet.FiveTuple{
			Src: testbed.IPFor(50), Dst: testbed.IPFor(60),
			SrcPort: uint16(2000 + flow), DstPort: 443, Protocol: packet.ProtoTCP,
		}
		payload := apps.BuildUDP(tup.Src, tup.Dst, tup.SrcPort, tup.DstPort, []byte("data"))
		lb.ActivateSYN(payload, testbed.MACFor(250))
		tb.RunFor(time.Millisecond)
		if ck, ok := cookies[tup.SrcPort]; ok {
			lb.LearnCookie(tup, ck)
		}
		for i := 0; i < 16; i++ {
			lb.ActivateData(tup, payload, testbed.MACFor(250))
			tb.RunFor(200 * time.Microsecond)
		}
	}
	tb.RunFor(10 * time.Millisecond)

	fmt.Printf("%d SYNs selected servers; %d data packets routed statelessly\n", lb.SYNsSent, lb.Routed)
	total := uint64(0)
	for i, s := range servers {
		fmt.Printf("  server %d: %4d packets\n", i, s.Echoed)
		total += s.Echoed
	}
	fmt.Printf("total %d packets across %d servers (round-robin spread)\n", total, nsrv)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
