// Multi-tenancy (Figure 9b): four clients install private caches on the
// same switch, staggered in time. The first three obtain exclusive stages
// (disjoint mutants); the fourth must share, briefly disrupting the first
// tenant while the allocator reshapes its region — then both settle at an
// equal, lower hit rate. No tenant's packets can touch another's memory.
package main

import (
	"fmt"
	"log"
	"time"

	"activermt/internal/apps"
	"activermt/internal/client"
	"activermt/internal/testbed"
	"activermt/internal/workload"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	srv := apps.NewKVServer(tb.Eng, testbed.MACFor(200), testbed.IPFor(999))
	_, sp := tb.Attach(srv, srv.MAC())
	srv.Attach(sp)

	const n = 4
	const nkeys = 2048
	type tenant struct {
		cache *apps.Cache
		cl    *client.Client
		zipf  *workload.Zipf
		keys  [][2]uint32
	}
	tenants := make([]*tenant, n)
	for i := range tenants {
		t := &tenant{zipf: workload.NewZipf(int64(i)*31+5, 1.25, nkeys)}
		t.keys = make([][2]uint32, nkeys)
		var hot []apps.KVMsg
		for j := range t.keys {
			k0 := uint32(j)*2654435761 + uint32(i+1)*0x1000000
			k1 := uint32(j)*2246822519 + uint32(i+1)
			v := uint32(0xD000_0000 + j)
			t.keys[j] = [2]uint32{k0, k1}
			srv.Store[apps.KeyOf(k0, k1)] = v
			hot = append(hot, apps.KVMsg{Key0: k0, Key1: k1, Value: v})
		}
		t.cache = apps.NewCache(srv.MAC(), testbed.IPFor(10+i), testbed.IPFor(999))
		t.cl = tb.AddClient(uint16(i+1), apps.CacheService(t.cache))
		t.cache.Bind(t.cl)
		t.cache.SetHotObjects(hot)
		idx := i
		t.cl.Service().OnOperational = func(cl *client.Client) { tenants[idx].cache.Populate() }
		tenants[i] = t
	}

	stagger := 2 * time.Second
	started := make([]bool, n)
	nextReport := tb.Eng.Now() + 500*time.Millisecond
	end := time.Duration(n)*stagger + 3*time.Second

	for tb.Eng.Now() < end {
		now := tb.Eng.Now()
		for i, t := range tenants {
			if !started[i] && now >= time.Duration(i)*stagger {
				started[i] = true
				fmt.Printf("[%6.3fs] tenant %d arrives\n", now.Seconds(), i+1)
				must(t.cl.RequestAllocation())
			}
			if started[i] {
				k := t.keys[t.zipf.Next()]
				t.cache.Get(k[0], k[1])
			}
		}
		tb.RunFor(200 * time.Microsecond)
		if tb.Eng.Now() >= nextReport {
			line := fmt.Sprintf("[%6.3fs] hit rates:", tb.Eng.Now().Seconds())
			for i, t := range tenants {
				if started[i] {
					line += fmt.Sprintf("  t%d=%.2f", i+1, t.cache.HitRate())
					t.cache.ResetStats()
				} else {
					line += fmt.Sprintf("  t%d=----", i+1)
				}
			}
			fmt.Println(line)
			nextReport += 500 * time.Millisecond
		}
	}

	fmt.Println("\nfinal placements (stage sets) and disruptions:")
	for i, t := range tenants {
		pl := t.cl.Placement()
		stages := []int{}
		for _, ap := range pl.Accesses {
			stages = append(stages, ap.Logical%20)
		}
		fmt.Printf("  tenant %d: stages %v, %d buckets, reallocated %d time(s)\n",
			i+1, stages, t.cache.Capacity(), t.cl.Reallocations)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
