// Listing 1: query an in-network object cache (8-byte keys, 4-byte values).
// data[0]/data[1] carry the key halves; data[2] the client-translated
// bucket address; on a hit the value returns in data[0].
.arg ADDR 2
MAR_LOAD $ADDR      // locate bucket
MEM_READ            // first 4 bytes
MBR_EQUALS_DATA_1   // compare bytes
CRET                // partial match?
MEM_READ            // next 4 bytes
MBR_EQUALS_DATA_2   // compare bytes
CRET                // full match?
RTS                 // create reply
MEM_READ            // read the value
MBR_STORE           // write to packet
RETURN              // fin.
