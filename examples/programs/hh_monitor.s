// Appendix B.1 (adapted): frequent-item monitor. Two count-min-sketch rows
// (hash-addressed via switch-side translation) and a hot-key fingerprint
// table; data[2] carries the hotness threshold.
MBR_LOAD 0          // key half 0
COPY_HASHDATA_MBR 0
HASH                // row 1 index (stage-seeded function)
ADDR_MASK
ADDR_OFFSET
MEM_INCREMENT       // c1
COPY_MBR2_MBR       // save c1
HASH                // row 2 index (different stage, different function)
ADDR_MASK
ADDR_OFFSET
MEM_MINREADINC      // MBR2 = min(c1, c2) = sketched count
MBR_LOAD 2          // threshold
MIN
MBR_EQUALS_MBR2     // zero iff count <= threshold
CRETI               // not hot: forward
ADDR_MASK           // fold the row-2 address into the key table
ADDR_OFFSET
MBR_LOAD 0          // fingerprint
MEM_WRITE
RETURN
