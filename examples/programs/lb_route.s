// Appendix B.2.2: Cheetah stateless flow routing. data[1] = cookie,
// data[2] = salt; no switch memory at all.
COPY_HASHDATA_5TUPLE
MBR_LOAD 2
COPY_HASHDATA_MBR 2
HASH 1
COPY_MBR_MAR
MBR2_LOAD 1
MBR_EQUALS_MBR2     // port = h ^ cookie
SET_DST
RETURN
