// Appendix C, Listing 6: remotely write one memory word. data[0] = value,
// data[2] = address; the RTS acknowledges the (idempotent) write.
.arg VAL 0
.arg ADDR 2
MBR_LOAD $VAL
MAR_LOAD $ADDR
MEM_WRITE
RTS
RETURN
