// Appendix B.2.1 (adapted): Cheetah server selection, carried on SYNs.
// data[0] = pool mask, data[1] <- cookie, data[2] = salt, data[3] = counter
// address (client-translated).
.arg CTR 3
COPY_HASHDATA_5TUPLE
MAR_LOAD $CTR       // round-robin counter
MEM_INCREMENT       // ticket
COPY_MAR_MBR
MBR_LOAD 0          // pool mask
BIT_AND_MAR_MBR     // pool index
ADDR_OFFSET         // + pool region base
MEM_READ            // server port
SET_DST             // route the SYN there
COPY_MBR2_MBR
MBR_LOAD 2          // salt
COPY_HASHDATA_MBR 2
HASH 1              // fixed hash unit: stage-independent
COPY_MBR_MAR
MBR_EQUALS_MBR2     // cookie = h ^ port
MBR_STORE 1
RETURN
