// Quickstart: a per-address packet counter. data[2] = counter address; the
// running count returns to the sender in data[0].
.arg ADDR 2
MAR_LOAD $ADDR
MEM_INCREMENT
MBR_STORE 0
RTS
RETURN
