// Appendix C, Listing 5 (on the shared memsync skeleton): remotely read one
// memory word. data[2] = address; the value returns in data[0].
.arg ADDR 2
NOP
MAR_LOAD $ADDR
MEM_READ
MBR_STORE 0
RTS
RETURN
