// In-network cache, end to end: the paper's Section 6.3 case study. A
// client first deploys a frequent-item monitor on its key-value traffic,
// extracts the hot set, context-switches the switch memory over to a cache,
// populates it over the data plane, and watches its hit rate stabilize —
// all without touching the switch image.
package main

import (
	"fmt"
	"log"
	"time"

	"activermt/internal/apps"
	"activermt/internal/testbed"
	"activermt/internal/workload"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A plain UDP key-value server: what the cache offloads.
	srv := apps.NewKVServer(tb.Eng, testbed.MACFor(200), testbed.IPFor(999))
	_, sp := tb.Attach(srv, srv.MAC())
	srv.Attach(sp)

	// Workload: 4096 keys, Zipf-distributed requests.
	const nkeys = 4096
	zipf := workload.NewZipf(7, 1.25, nkeys)
	keys := make([][2]uint32, nkeys)
	values := map[uint64]uint32{}
	for i := range keys {
		k0, k1, v := uint32(i)*2654435761+3, uint32(i)*2246822519+11, uint32(0xBEEF0000+i)
		keys[i] = [2]uint32{k0, k1}
		srv.Store[apps.KeyOf(k0, k1)] = v
		values[apps.KeyOf(k0, k1)] = v
	}

	// Phase 1: deploy the frequent-item monitor (count-min sketch + hot-key
	// table, Appendix B.1) and activate requests with it for two seconds.
	hh := apps.NewHeavyHitter(30)
	hhCl := tb.AddClient(1001, apps.HeavyHitterService(hh))
	hh.Bind(hhCl)
	hh.SnapshotFn = tb.SnapshotFn()
	must(hhCl.RequestAllocation())
	must(tb.WaitOperational(hhCl, 5*time.Second))
	fmt.Printf("[%6.3fs] monitor deployed (mutant %v)\n", tb.Eng.Now().Seconds(), hhCl.Placement().Mutant)

	stop := tb.Eng.Now() + 2*time.Second
	for tb.Eng.Now() < stop {
		k := keys[zipf.Next()]
		msg := apps.KVMsg{Op: apps.KVGet, Key0: k[0], Key1: k[1]}
		payload := apps.BuildUDP(testbed.IPFor(1), testbed.IPFor(999), 40001, apps.KVPort, msg.Encode())
		hh.Observe(k[0], k[1], payload, srv.MAC())
		tb.RunFor(100 * time.Microsecond)
	}

	// Phase 2: memory synchronization — read the hot set out of switch
	// memory via the control plane.
	hot, err := hh.HotKeys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%6.3fs] monitor found %d hot keys\n", tb.Eng.Now().Seconds(), len(hot))

	// Phase 3: context switch — release the monitor, deploy the cache
	// (Listing 1) in its place. This is the runtime reprogrammability the
	// paper is about: seconds, not a P4 recompile.
	start := tb.Eng.Now()
	must(hhCl.Release())
	tb.RunFor(200 * time.Millisecond)

	cache := apps.NewCache(srv.MAC(), testbed.IPFor(1), testbed.IPFor(999))
	cacheCl := tb.AddClient(1, apps.CacheService(cache))
	cache.Bind(cacheCl)
	must(cacheCl.RequestAllocation())
	must(tb.WaitOperational(cacheCl, 5*time.Second))
	fmt.Printf("[%6.3fs] context switch done in %.3fs; cache capacity %d buckets\n",
		tb.Eng.Now().Seconds(), (tb.Eng.Now() - start).Seconds(), cache.Capacity())

	// Phase 4: populate with the measured hot set and serve.
	var hotObjs []apps.KVMsg
	for _, kv := range hot {
		hotObjs = append(hotObjs, apps.KVMsg{Key0: kv.Key0, Key1: kv.Key1, Value: values[apps.KeyOf(kv.Key0, kv.Key1)]})
	}
	cache.SetHotObjects(hotObjs)
	cache.Populate()
	tb.RunFor(20 * time.Millisecond)

	for window := 0; window < 4; window++ {
		cache.ResetStats()
		for i := 0; i < 5000; i++ {
			k := keys[zipf.Next()]
			cache.Get(k[0], k[1])
			tb.RunFor(100 * time.Microsecond)
		}
		tb.RunFor(5 * time.Millisecond)
		fmt.Printf("[%6.3fs] hit rate %.3f (%d hits / %d misses)\n",
			tb.Eng.Now().Seconds(), cache.HitRate(), cache.Hits, cache.Misses)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
