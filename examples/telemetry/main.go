// Network telemetry: deploy the frequent-item (heavy-hitter) monitor of
// Appendix B.1 on a traffic mix and identify the flows that exceed a
// count threshold — a count-min sketch updated at line rate in switch
// memory, with hot-key fingerprints recorded in a hash-indexed table.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"activermt/internal/apps"
	"activermt/internal/testbed"
	"activermt/internal/workload"
)

func main() {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sink := apps.NewKVServer(tb.Eng, testbed.MACFor(200), testbed.IPFor(999))
	_, sp := tb.Attach(sink, sink.MAC())
	sink.Attach(sp)

	const threshold = 25
	hh := apps.NewHeavyHitter(threshold)
	cl := tb.AddClient(1, apps.HeavyHitterService(hh))
	hh.Bind(cl)
	hh.SnapshotFn = tb.SnapshotFn()
	must(cl.RequestAllocation())
	must(tb.WaitOperational(cl, 5*time.Second))
	pl := cl.Placement()
	fmt.Printf("monitor deployed: sketch rows at stages %d/%d (%d counters each), key table at stage %d\n",
		pl.Accesses[0].Logical, pl.Accesses[1].Logical,
		pl.Accesses[0].Range.Hi-pl.Accesses[0].Range.Lo, pl.Accesses[2].Logical)

	// Traffic: 512 flows; flow popularity is Zipfian, so a handful of
	// flows dominate. Ground truth counted client-side for comparison.
	z := workload.NewZipf(3, 1.3, 512)
	truth := map[uint32]int{}
	for i := 0; i < 20000; i++ {
		flow := uint32(z.Next())
		k0 := flow*2654435761 + 1
		truth[k0]++
		hh.Observe(k0, flow, nil, sink.MAC())
		tb.RunFor(20 * time.Microsecond)
	}
	tb.RunFor(10 * time.Millisecond)

	hot, err := hh.HotKeys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch flagged %d flows above threshold %d\n", len(hot), threshold)

	// Precision/recall against ground truth.
	trueHot := map[uint32]bool{}
	for k, c := range truth {
		if c > threshold {
			trueHot[k] = true
		}
	}
	flagged := map[uint32]bool{}
	hits := 0
	for _, kv := range hot {
		flagged[kv.Key0] = true
		if trueHot[kv.Key0] {
			hits++
		}
	}
	missed := 0
	for k := range trueHot {
		if !flagged[k] {
			missed++
		}
	}
	fmt.Printf("ground truth: %d hot flows; detected %d of them, missed %d, false-flagged %d\n",
		len(trueHot), hits, missed, len(hot)-hits)

	// Show the top detections with their true counts.
	sort.Slice(hot, func(i, j int) bool { return truth[hot[i].Key0] > truth[hot[j].Key0] })
	for i, kv := range hot {
		if i >= 8 {
			break
		}
		fmt.Printf("  flow %#x: %d requests\n", kv.Key0, truth[kv.Key0])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
